//! A lock-free, log-bucketed latency histogram.
//!
//! The layout is the classic HdrHistogram "log-linear" scheme: values are
//! grouped into power-of-two octaves, and each octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets. Bucket width therefore grows with
//! magnitude, bounding the *relative* quantisation error at
//! `1 / SUB_BUCKETS` (≈3.1% with 32 sub-buckets) across the full `u64`
//! range with a fixed-size array of [`BUCKET_COUNT`] counters.
//!
//! Recording is a single relaxed `fetch_add` per sample (plus a relaxed
//! `fetch_max` for the true maximum), so histograms can be shared across
//! threads without locks. [`LatencyHistogram::snapshot`] reads every
//! counter into a plain [`HistogramSnapshot`], which can be merged with
//! other snapshots and queried for percentiles.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Number of linear sub-buckets per power-of-two octave, as a bit shift.
pub const SUB_BUCKET_BITS: u32 = 5;

/// Number of linear sub-buckets per power-of-two octave (32): the
/// reciprocal bounds the histogram's relative error.
pub const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// Total number of buckets covering the full `u64` range: one linear
/// block for values below [`SUB_BUCKETS`], then one block per remaining
/// octave.
pub const BUCKET_COUNT: usize = (64 - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS as usize;

/// Index of the bucket that counts `value`.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BUCKET_BITS;
    let sub = (value >> shift) - SUB_BUCKETS;
    ((u64::from(shift) + 1) * SUB_BUCKETS + sub) as usize
}

/// Smallest value that maps to bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
#[inline]
#[must_use]
pub fn bucket_low(index: usize) -> u64 {
    assert!(index < BUCKET_COUNT, "bucket index out of range");
    let block = index as u64 / SUB_BUCKETS;
    let sub = index as u64 % SUB_BUCKETS;
    if block == 0 {
        sub
    } else {
        (SUB_BUCKETS + sub) << (block - 1)
    }
}

/// Largest value that maps to bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
#[inline]
#[must_use]
pub fn bucket_high(index: usize) -> u64 {
    let low = bucket_low(index);
    let block = index as u64 / SUB_BUCKETS;
    if block == 0 {
        low
    } else {
        low + ((1 << (block - 1)) - 1)
    }
}

/// A fixed-size, lock-free latency histogram.
///
/// Values are dimensionless `u64`s; the serving pipelines record
/// nanoseconds (and the replica's epoch-lag stage records epochs).
/// Concurrent [`record`](Self::record) calls never block; a
/// [`snapshot`](Self::snapshot) is a racy-but-monotonic read (each
/// counter is read atomically, but the set of reads is not a consistent
/// cut — percentiles derived from a snapshot under concurrent load are
/// approximate by construction anyway).
pub struct LatencyHistogram {
    counts: Box<[AtomicU64]>,
    sum: CachePadded<AtomicU64>,
    max: CachePadded<AtomicU64>,
    // Exemplar: which request produced the current worst sample. The
    // value gates the pair via fetch_max, so under a race the stored
    // id/trace belong to *a* near-max sample — good enough to name an
    // offender, which is the exemplar contract.
    exemplar_value: AtomicU64,
    exemplar_id: AtomicU64,
    exemplar_trace: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram covering the full `u64` range.
    #[must_use]
    pub fn new() -> Self {
        let counts = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        LatencyHistogram {
            counts,
            sum: CachePadded::new(AtomicU64::new(0)),
            max: CachePadded::new(AtomicU64::new(0)),
            exemplar_value: AtomicU64::new(0),
            exemplar_id: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value (e.g. per-op latency of a
    /// batch, amortised). The running sum wraps on overflow; percentiles
    /// and `max` are unaffected.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one sample **with attribution**: when `value` is the new
    /// worst (or ties it), the request id and trace id are stashed as
    /// the histogram's exemplar, so a later scrape's max names the
    /// concrete offending request instead of just a number.
    #[inline]
    pub fn record_tagged(&self, value: u64, request_id: u64, trace_id: u64) {
        self.record(value);
        let prev = self.exemplar_value.fetch_max(value, Ordering::Relaxed);
        if value >= prev {
            self.exemplar_id.store(request_id, Ordering::Relaxed);
            self.exemplar_trace.store(trace_id, Ordering::Relaxed);
        }
    }

    /// Copies the current counters into a plain-data snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Box<[u64]> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            exemplar_value: self.exemplar_value.load(Ordering::Relaxed),
            exemplar_id: self.exemplar_id.load(Ordering::Relaxed),
            exemplar_trace: self.exemplar_trace.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Not atomic with respect to concurrent
    /// recorders: samples recorded during a reset may be partially kept.
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.exemplar_value.store(0, Ordering::Relaxed);
        self.exemplar_id.store(0, Ordering::Relaxed);
        self.exemplar_trace.store(0, Ordering::Relaxed);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count)
            .field("max", &snap.max)
            .finish_non_exhaustive()
    }
}

/// A plain-data copy of a [`LatencyHistogram`]'s counters.
///
/// Snapshots are mergeable ([`merge`](Self::merge)) and queryable for
/// percentiles with bounded relative error: the reported value for any
/// percentile lands in the same bucket as the exact order statistic, so
/// it is within one bucket width (≤ `1 / SUB_BUCKETS` relative) of it.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Box<[u64]>,
    count: u64,
    sum: u64,
    max: u64,
    exemplar_value: u64,
    exemplar_id: u64,
    exemplar_trace: u64,
}

impl HistogramSnapshot {
    /// An all-zero snapshot; the identity element for [`merge`](Self::merge).
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKET_COUNT].into_boxed_slice(),
            count: 0,
            sum: 0,
            max: 0,
            exemplar_value: 0,
            exemplar_id: 0,
            exemplar_trace: 0,
        }
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Wrapping sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket sample counts ([`BUCKET_COUNT`] entries).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Folds `other` into `self`. Equivalent to having recorded the
    /// union of both sample streams into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        if other.exemplar_value >= self.exemplar_value {
            self.exemplar_value = other.exemplar_value;
            self.exemplar_id = other.exemplar_id;
            self.exemplar_trace = other.exemplar_trace;
        }
    }

    /// The windowed view: the samples recorded **since** `earlier` was
    /// taken, as a bucket-wise subtraction. `earlier` must be an older
    /// snapshot of the same histogram (pass [`empty`](Self::empty) for
    /// a since-boot view); buckets saturate at zero, so a reset between
    /// the two snapshots degrades gracefully instead of underflowing.
    ///
    /// The window's `max` is approximated from the highest non-empty
    /// delta bucket (clamped to the overall max) — exact maxima are not
    /// recoverable from counters alone. The exemplar is carried from
    /// `self` (the most recent attribution).
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Box<[u64]> = self
            .counts
            .iter()
            .zip(earlier.counts.iter())
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let count = counts.iter().sum();
        let max = counts
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |i| bucket_high(i).min(self.max));
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.wrapping_sub(earlier.sum),
            max,
            exemplar_value: self.exemplar_value,
            exemplar_id: self.exemplar_id,
            exemplar_trace: self.exemplar_trace,
        }
    }

    /// The current worst sample's attribution, when one was recorded
    /// via [`LatencyHistogram::record_tagged`]: `(value, request_id,
    /// trace_id)`.
    #[must_use]
    pub fn exemplar(&self) -> Option<(u64, u64, u64)> {
        if self.exemplar_id == 0 && self.exemplar_trace == 0 {
            None
        } else {
            Some((self.exemplar_value, self.exemplar_id, self.exemplar_trace))
        }
    }

    /// Value at percentile `pct` (0–100): the highest value representable
    /// by the bucket containing the exact order statistic, clamped to the
    /// observed maximum. Returns 0 for an empty snapshot.
    #[must_use]
    pub fn value_at_percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((pct / 100.0) * self.count as f64).ceil() as u64;
        let target = target.clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of all recorded samples (0.0 when empty; inaccurate if the
    /// running sum wrapped).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Condenses the snapshot into the fixed percentile set shipped over
    /// the wire.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            sum: self.sum,
            p50: self.value_at_percentile(50.0),
            p90: self.value_at_percentile(90.0),
            p99: self.value_at_percentile(99.0),
            p999: self.value_at_percentile(99.9),
            max: self.max,
        }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
            .collect();
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("nonzero_buckets", &nonzero)
            .finish()
    }
}

/// Fixed percentile summary of one histogram: what the `Metrics` wire
/// frame carries per stage/tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Summary {
    /// Total number of recorded samples.
    pub count: u64,
    /// Wrapping sum of all samples (for mean reconstruction).
    pub sum: u64,
    /// 50th percentile (median).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest recorded sample.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_maths_are_inverse() {
        for i in 0..BUCKET_COUNT {
            let low = bucket_low(i);
            let high = bucket_high(i);
            assert!(low <= high, "bucket {i}: low {low} > high {high}");
            assert_eq!(bucket_index(low), i, "low of bucket {i}");
            assert_eq!(bucket_index(high), i, "high of bucket {i}");
            if i + 1 < BUCKET_COUNT {
                assert_eq!(bucket_low(i + 1), high + 1, "buckets {i} contiguous");
            } else {
                assert_eq!(high, u64::MAX, "last bucket tops out the range");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[1u64, 31, 32, 33, 1_000, 123_456_789, u64::MAX / 3] {
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i) + 1;
            assert!(
                width == 1 || width <= v / (SUB_BUCKETS / 2),
                "bucket width {width} too wide for value {v}"
            );
        }
    }

    #[test]
    fn empty_snapshot_reports_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.value_at_percentile(50.0), 0);
        assert_eq!(s.summary(), Summary::default());
    }

    #[test]
    fn percentiles_on_known_data() {
        let h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v * 10);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max(), 1000);
        // Values up to 1000 sit in buckets at most 16 wide, so every
        // percentile is within one bucket of the exact answer.
        let p50 = s.value_at_percentile(50.0);
        assert!((495..=520).contains(&p50), "p50 = {p50}");
        assert_eq!(s.value_at_percentile(100.0), 1000);
        assert_eq!(s.summary().max, 1000);
    }

    #[test]
    fn record_n_matches_looped_record() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_n(777, 5);
        a.record_n(3, 0);
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn merge_is_the_union() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let union = LatencyHistogram::new();
        for v in [1u64, 50, 4096, u64::MAX] {
            a.record(v);
            union.record(v);
        }
        for v in [2u64, 50, 1 << 40] {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 40_000);
        assert!(s.max() >= 3_000);
    }

    #[test]
    fn reset_clears_everything() {
        let h = LatencyHistogram::new();
        h.record_tagged(123, 7, 9);
        h.reset();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.exemplar(), None);
    }

    #[test]
    fn exemplar_names_the_worst_sample() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().exemplar(), None);
        h.record_tagged(100, 1, 0);
        h.record_tagged(5_000, 2, 0xabc);
        h.record_tagged(300, 3, 0);
        assert_eq!(h.snapshot().exemplar(), Some((5_000, 2, 0xabc)));
        // Merge keeps the larger exemplar.
        let other = LatencyHistogram::new();
        other.record_tagged(9_000, 9, 0xdef);
        let mut merged = h.snapshot();
        merged.merge(&other.snapshot());
        assert_eq!(merged.exemplar(), Some((9_000, 9, 0xdef)));
    }

    #[test]
    fn delta_is_the_window_between_snapshots() {
        let h = LatencyHistogram::new();
        h.record(100);
        h.record(1_000_000);
        let earlier = h.snapshot();
        h.record(200);
        h.record(200);
        let window = h.snapshot().delta(&earlier);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum(), 400);
        // The window's max reflects the recent samples, not the old
        // million-ns outlier (bucket-resolution approximate).
        assert!(window.max() < 1_000, "window max = {}", window.max());
        let p99 = window.value_at_percentile(99.0);
        assert!((200..=220).contains(&p99), "window p99 = {p99}");
        // Identity: delta against empty is the snapshot itself.
        let full = h.snapshot();
        assert_eq!(full.delta(&HistogramSnapshot::empty()), full);
        // Degenerate: delta of a snapshot against itself is empty.
        assert_eq!(full.delta(&full).count(), 0);
    }
}
