//! The zero-cost-when-disabled recording facade.
//!
//! Hot paths hold a [`Recorder`] and call [`Recorder::start`] /
//! [`Recorder::lap`] around the region they want timed. When the
//! recorder is [`Recorder::Disabled`] the entire sequence is two enum
//! matches: no clock reads, no atomic writes, nothing shared — the
//! `metrics_overhead` bench in `pathcopy-bench` pins this down against
//! a bare loop.

use std::sync::Arc;
use std::time::Instant;

use crate::histogram::{HistogramSnapshot, LatencyHistogram};

/// Converts a duration since `start` to saturating nanoseconds.
#[inline]
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A handle that either records into a shared [`LatencyHistogram`] or
/// does nothing at all.
///
/// The disabled variant is the zero-cost path: [`start`](Self::start)
/// returns `None` without touching the clock, and every record method
/// is a no-op branch. The enabled variant clones an `Arc`, so many
/// pipeline stages can feed one histogram (or one each).
#[derive(Clone)]
pub enum Recorder {
    /// Record nothing; all operations are branch-only no-ops.
    Disabled,
    /// Record into the shared histogram.
    Enabled(Arc<LatencyHistogram>),
}

impl Recorder {
    /// A recorder wired to a fresh histogram.
    #[must_use]
    pub fn enabled() -> Self {
        Recorder::Enabled(Arc::new(LatencyHistogram::new()))
    }

    /// A recorder feeding an existing shared histogram.
    #[must_use]
    pub fn shared(hist: Arc<LatencyHistogram>) -> Self {
        Recorder::Enabled(hist)
    }

    /// True when samples are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        matches!(self, Recorder::Enabled(_))
    }

    /// Starts a timing region: reads the clock only when enabled.
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        match self {
            Recorder::Disabled => None,
            Recorder::Enabled(_) => Some(Instant::now()),
        }
    }

    /// Records the nanoseconds elapsed since `started` (from
    /// [`start`](Self::start) on any recorder of the same enablement)
    /// and returns the new reference point, so consecutive pipeline
    /// stages share one clock read per boundary.
    #[inline]
    pub fn lap(&self, started: Option<Instant>) -> Option<Instant> {
        match (self, started) {
            (Recorder::Enabled(hist), Some(t0)) => {
                let now = Instant::now();
                hist.record(u64::try_from((now - t0).as_nanos()).unwrap_or(u64::MAX));
                Some(now)
            }
            _ => None,
        }
    }

    /// [`lap`](Self::lap) with exemplar attribution: the sample also
    /// competes to become the histogram's exemplar, carrying the
    /// request id (and trace id, `0` when untraced) of the offender.
    #[inline]
    pub fn lap_tagged(
        &self,
        started: Option<Instant>,
        request_id: u64,
        trace_id: u64,
    ) -> Option<Instant> {
        match (self, started) {
            (Recorder::Enabled(hist), Some(t0)) => {
                let now = Instant::now();
                hist.record_tagged(
                    u64::try_from((now - t0).as_nanos()).unwrap_or(u64::MAX),
                    request_id,
                    trace_id,
                );
                Some(now)
            }
            _ => None,
        }
    }

    /// Records the nanoseconds elapsed since `started`, discarding the
    /// end point. Use [`lap`](Self::lap) when another stage follows.
    #[inline]
    pub fn record_since(&self, started: Option<Instant>) {
        if let (Recorder::Enabled(hist), Some(t0)) = (self, started) {
            hist.record(elapsed_ns(t0));
        }
    }

    /// [`record_since`](Self::record_since) with exemplar attribution.
    #[inline]
    pub fn record_since_tagged(&self, started: Option<Instant>, request_id: u64, trace_id: u64) {
        if let (Recorder::Enabled(hist), Some(t0)) = (self, started) {
            hist.record_tagged(elapsed_ns(t0), request_id, trace_id);
        }
    }

    /// Zeroes the backing histogram (no-op when disabled). Not atomic
    /// with respect to concurrent recorders.
    pub fn reset(&self) {
        if let Recorder::Enabled(hist) = self {
            hist.reset();
        }
    }

    /// Records a raw sample (nanoseconds, epochs — whatever the stage
    /// measures) when enabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Recorder::Enabled(hist) = self {
            hist.record(value);
        }
    }

    /// Snapshot of the backing histogram; empty when disabled.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        match self {
            Recorder::Disabled => HistogramSnapshot::empty(),
            Recorder::Enabled(hist) => hist.snapshot(),
        }
    }

    /// The backing histogram, if enabled.
    #[must_use]
    pub fn histogram(&self) -> Option<&Arc<LatencyHistogram>> {
        match self {
            Recorder::Disabled => None,
            Recorder::Enabled(hist) => Some(hist),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Recorder::Disabled => f.write_str("Recorder::Disabled"),
            Recorder::Enabled(hist) => f
                .debug_tuple("Recorder::Enabled")
                .field(&hist.snapshot().count())
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_reads_the_clock() {
        let r = Recorder::Disabled;
        assert!(!r.is_enabled());
        assert!(r.start().is_none());
        assert!(r.lap(None).is_none());
        r.record_since(None);
        r.record(42);
        assert!(r.snapshot().is_empty());
        assert!(r.histogram().is_none());
    }

    #[test]
    fn enabled_records_laps() {
        let r = Recorder::enabled();
        let t0 = r.start();
        assert!(t0.is_some());
        let t1 = r.lap(t0);
        assert!(t1.is_some());
        r.record_since(t1);
        assert_eq!(r.snapshot().count(), 2);
    }

    #[test]
    fn shared_recorders_feed_one_histogram() {
        let hist = Arc::new(LatencyHistogram::new());
        let a = Recorder::shared(Arc::clone(&hist));
        let b = Recorder::shared(Arc::clone(&hist));
        a.record(1);
        b.record(2);
        assert_eq!(hist.snapshot().count(), 2);
    }
}
