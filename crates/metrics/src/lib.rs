//! # pathcopy-metrics
//!
//! Distribution-level observability for the path-copying serving stack.
//! The source paper's finding is that scaling effects invisible to
//! throughput averages (allocator pressure, cache misses, NUMA) dominate
//! at high core counts, so the serving layer exposes *latency
//! distributions*, not just the monotonic counters in
//! `pathcopy_core::stats`.
//!
//! Three pieces:
//!
//! * [`LatencyHistogram`] — a lock-free, HdrHistogram-style log-bucketed
//!   histogram: power-of-two octaves with [`SUB_BUCKETS`] linear
//!   sub-buckets each, a fixed array of relaxed atomic counters, and
//!   mergeable [`HistogramSnapshot`]s with bounded-relative-error
//!   percentiles (p50/p90/p99/p999/max via [`Summary`]).
//! * [`Recorder`] — the facade hot paths hold. The `Disabled` variant is
//!   provably zero-cost: no clock reads, no atomics, just a branch.
//! * [`Stage`] — names for the instrumented pipeline stages, shared by
//!   the wire protocol's `Metrics` frame and the text exposition.

#![warn(missing_docs)]

pub mod histogram;
pub mod recorder;

pub use histogram::{
    bucket_high, bucket_index, bucket_low, HistogramSnapshot, LatencyHistogram, Summary,
    BUCKET_COUNT, SUB_BUCKETS, SUB_BUCKET_BITS,
};
pub use recorder::Recorder;

/// The instrumented pipeline stages. Discriminants are the `stage` bytes
/// carried by the wire protocol's `Metrics` response and must never be
/// reused for a different meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Event loop: decode→dispatch queue wait, per request tag (ns).
    QueueWait = 1,
    /// Worker pool: `handle_request` + encode time, per request tag (ns).
    Execute = 2,
    /// Event loop: reply-ready→last-byte-written flush time, per request
    /// tag (ns).
    WriteFlush = 3,
    /// Durable feed persister: append + fsync latency per publish (ns).
    AppendFsync = 4,
    /// Push replica: apply latency per push frame (ns).
    PushApply = 5,
    /// Push replica: published-epoch minus applied-epoch watermark gap at
    /// apply time (epochs, not ns — 1 means fully caught up).
    EpochLag = 6,
}

impl Stage {
    /// Every stage, in wire-discriminant order.
    pub const ALL: [Stage; 6] = [
        Stage::QueueWait,
        Stage::Execute,
        Stage::WriteFlush,
        Stage::AppendFsync,
        Stage::PushApply,
        Stage::EpochLag,
    ];

    /// Decodes a wire `stage` byte.
    #[must_use]
    pub fn from_u8(byte: u8) -> Option<Stage> {
        match byte {
            1 => Some(Stage::QueueWait),
            2 => Some(Stage::Execute),
            3 => Some(Stage::WriteFlush),
            4 => Some(Stage::AppendFsync),
            5 => Some(Stage::PushApply),
            6 => Some(Stage::EpochLag),
            _ => None,
        }
    }

    /// Stable snake_case name used as the metric name in the text
    /// exposition.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Execute => "execute",
            Stage::WriteFlush => "write_flush",
            Stage::AppendFsync => "append_fsync",
            Stage::PushApply => "push_apply",
            Stage::EpochLag => "epoch_lag",
        }
    }

    /// Unit suffix for the text exposition: everything is nanoseconds
    /// except the epoch-lag watermark gap.
    #[must_use]
    pub fn unit(self) -> &'static str {
        match self {
            Stage::EpochLag => "epochs",
            _ => "ns",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_bytes_roundtrip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_u8(stage as u8), Some(stage));
        }
        assert_eq!(Stage::from_u8(0), None);
        assert_eq!(Stage::from_u8(7), None);
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }
}
