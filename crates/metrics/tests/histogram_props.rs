//! Property tests for the log-bucketed histogram (satellite of the
//! observability PR): against an exact sorted-vec oracle, every reported
//! percentile must land in the same bucket as the true order statistic
//! (i.e. within one bucket's relative error), and merging two snapshots
//! must equal recording the union of both sample streams.

use proptest::prelude::*;

use pathcopy_metrics::{
    bucket_high, bucket_index, bucket_low, HistogramSnapshot, LatencyHistogram,
};

/// Mix of dense small values (exercises the linear region and crowded
/// buckets) and arbitrary u64s (exercises every octave).
fn arb_sample() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..2_000, any::<u64>()]
}

/// Exact order statistic matching the histogram's rank convention:
/// the ceil(pct/100 · n)-th smallest sample, clamped to [1, n].
fn oracle(sorted: &[u64], pct: f64) -> u64 {
    let n = sorted.len() as u64;
    let target = ((pct / 100.0) * n as f64).ceil() as u64;
    let target = target.clamp(1, n);
    sorted[(target - 1) as usize]
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

const PERCENTILES: [f64; 10] = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentiles_match_oracle_within_one_bucket(
        samples in prop::collection::vec(arb_sample(), 1..400),
    ) {
        let snap = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());
        let exact_sum = samples.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(snap.sum(), exact_sum);

        for pct in PERCENTILES {
            let reported = snap.value_at_percentile(pct);
            let exact = oracle(&sorted, pct);
            let bucket = bucket_index(exact);
            prop_assert_eq!(
                bucket_index(reported), bucket,
                "pct {}: reported {} not in exact value {}'s bucket [{}, {}]",
                pct, reported, exact, bucket_low(bucket), bucket_high(bucket)
            );
            // Within the bucket the report never undershoots the truth.
            prop_assert!(reported >= exact, "pct {}: {} < {}", pct, reported, exact);
        }
        prop_assert_eq!(snap.value_at_percentile(100.0), snap.max());
    }

    #[test]
    fn merge_equals_recording_the_union(
        a in prop::collection::vec(arb_sample(), 0..200),
        b in prop::collection::vec(arb_sample(), 0..200),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));

        let mut union = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&union));
    }

    #[test]
    fn summary_is_consistent_with_percentile_queries(
        samples in prop::collection::vec(arb_sample(), 1..200),
    ) {
        let snap = snapshot_of(&samples);
        let s = snap.summary();
        prop_assert_eq!(s.count, snap.count());
        prop_assert_eq!(s.sum, snap.sum());
        prop_assert_eq!(s.p50, snap.value_at_percentile(50.0));
        prop_assert_eq!(s.p99, snap.value_at_percentile(99.0));
        prop_assert_eq!(s.max, snap.max());
        prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }
}
