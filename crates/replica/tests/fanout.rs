//! Push fan-out end-to-end: a relay tree (1 primary, 2 relays, 4
//! leaves) converges with **zero** `PullDiff` traffic in the steady
//! state, the primary's exact egress is independent of the leaf count,
//! and a session token carries read-your-writes through a leaf while
//! concurrent writers churn the primary.

use std::net::SocketAddr;
use std::ops::Bound;
use std::time::Duration;

use pathcopy_replica::PushReplica;
use pathcopy_server::backend::ShardedServe;
use pathcopy_server::{backend, Client, ClientError, ServerConfig, ServerHandle, SessionToken};

fn primary_server() -> ServerHandle {
    pathcopy_server::spawn(
        Box::new(ShardedServe::with_shards(8)),
        ServerConfig {
            feed_capacity: 32,
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral loopback port")
}

fn push_node(addr: SocketAddr) -> PushReplica {
    PushReplica::connect(addr, backend::by_name("sharded_map_8").unwrap())
        .expect("connect push replica")
}

fn relay_node(addr: SocketAddr) -> PushReplica {
    let mut node = push_node(addr);
    node.serve_relay(ServerConfig::with_workers(2))
        .expect("bind relay listener");
    node
}

/// Pumps every node (relays first, then leaves — upstream before
/// downstream) until all have applied `target`, panicking if the tree
/// stops making progress.
fn pump_until(nodes: &mut [&mut PushReplica], target: u64) {
    for _ in 0..2000 {
        if nodes.iter().all(|n| n.applied_epoch() >= target) {
            return;
        }
        for node in nodes.iter_mut() {
            if node.applied_epoch() < target {
                node.pump(Duration::from_millis(20)).expect("pump");
            }
        }
    }
    let at: Vec<u64> = nodes.iter().map(|n| n.applied_epoch()).collect();
    panic!("fan-out stalled below epoch {target}: applied = {at:?}");
}

fn state_of(node: &PushReplica) -> Vec<(i64, i64)> {
    let (entries, complete) =
        node.replica()
            .store()
            .snapshot()
            .range(Bound::Unbounded, Bound::Unbounded, 0);
    assert!(complete);
    entries
}

#[test]
fn relay_tree_converges_with_pushes_only() {
    let primary = primary_server();
    let mut writer = Client::connect(primary.addr()).unwrap();
    for k in 0..32i64 {
        writer.insert(k, k).unwrap();
    }
    writer.publish().unwrap();

    // Depth-2 tree: primary -> 2 relays -> 2 leaves each.
    let mut r1 = relay_node(primary.addr());
    let mut r2 = relay_node(primary.addr());
    let (r1_addr, r2_addr) = (r1.relay_addr().unwrap(), r2.relay_addr().unwrap());
    let mut leaves: Vec<PushReplica> = vec![
        push_node(r1_addr),
        push_node(r1_addr),
        push_node(r2_addr),
        push_node(r2_addr),
    ];

    // Churn: inserts, overwrites, removals across several epochs.
    for round in 1..=8i64 {
        writer.insert(round, round * 100).unwrap();
        writer.insert(100 + round, -round).unwrap();
        writer.remove(round - 1).unwrap();
        let epoch = writer.publish().unwrap();
        let mut nodes: Vec<&mut PushReplica> = Vec::new();
        nodes.push(&mut r1);
        nodes.push(&mut r2);
        nodes.extend(leaves.iter_mut());
        pump_until(&mut nodes, epoch);
    }

    // Every node equals the primary's head state.
    let mut primary_reader = Client::connect(primary.addr()).unwrap();
    let (expect, complete) = primary_reader.range(None, .., 0).unwrap();
    assert!(complete);
    for node in [&r1, &r2].into_iter().chain(leaves.iter()) {
        assert_eq!(state_of(node), expect, "node diverged from primary");
    }

    // The whole convergence was push-driven: after the bootstrap full
    // sync, no node ever issued a PullDiff and no gap was repaired.
    for node in [&r1, &r2].into_iter().chain(leaves.iter()) {
        let pull = node.pull_stats();
        let push = node.push_stats();
        assert_eq!(pull.diff_pulls, 0, "steady state must not pull diffs");
        assert_eq!(pull.full_syncs, 1, "exactly the bootstrap transfer");
        assert_eq!(push.push_gaps, 0, "no gaps in a pumped tree");
        assert_eq!(push.pushes_applied, 8, "one push per published epoch");
    }
    primary.shutdown();
}

#[test]
fn primary_egress_is_independent_of_leaf_count() {
    let primary = primary_server();
    let mut writer = Client::connect(primary.addr()).unwrap();
    // Seed the measured keys so every later overwrite produces replies
    // and diffs of identical encoded size (Some(prev) both phases).
    for k in 0..8i64 {
        writer.insert(k, 0).unwrap();
    }
    writer.publish().unwrap();

    let mut r1 = relay_node(primary.addr());
    let mut r2 = relay_node(primary.addr());
    let (r1_addr, r2_addr) = (r1.relay_addr().unwrap(), r2.relay_addr().unwrap());

    // Identically-shaped write rounds so the egress comparison is exact:
    // same keys, fixed-width values, same diff shape every round.
    let measure = |writer: &mut Client,
                   r1: &mut PushReplica,
                   r2: &mut PushReplica,
                   leaves: &mut [PushReplica],
                   base: i64| {
        let before = primary.wire_bytes().sent;
        for round in 0..4i64 {
            for k in 0..8i64 {
                writer.insert(k, base + round * 8 + k).unwrap();
            }
            let epoch = writer.publish().unwrap();
            let mut nodes: Vec<&mut PushReplica> = Vec::new();
            nodes.push(r1);
            nodes.push(r2);
            nodes.extend(leaves.iter_mut());
            pump_until(&mut nodes, epoch);
        }
        primary.wire_bytes().sent - before
    };

    // Phase A: two leaves.
    let mut leaves: Vec<PushReplica> = vec![push_node(r1_addr), push_node(r2_addr)];
    let egress_two_leaves = measure(&mut writer, &mut r1, &mut r2, &mut leaves, 1000);

    // Phase B: six leaves — three times the subscribers, all fed by the
    // relays. Their bootstrap full syncs hit the relays, not the
    // primary.
    leaves.extend([
        push_node(r1_addr),
        push_node(r1_addr),
        push_node(r2_addr),
        push_node(r2_addr),
    ]);
    let egress_six_leaves = measure(&mut writer, &mut r1, &mut r2, &mut leaves, 2000);

    // Exact equality, not a tolerance: the primary sent the same reply
    // bytes to the writer and the same two push frames per epoch in
    // both phases. The leaves' frames all came out of the relays.
    assert_eq!(
        egress_two_leaves, egress_six_leaves,
        "primary egress must not scale with the leaf count"
    );
    for leaf in &leaves {
        assert_eq!(leaf.pull_stats().diff_pulls, 0);
        assert!(leaf.relay_addr().is_none());
    }
    primary.shutdown();
}

#[test]
fn session_token_reads_your_writes_through_a_leaf() {
    let primary = primary_server();
    let mut seed = Client::connect(primary.addr()).unwrap();
    seed.insert(0, 0).unwrap();
    seed.publish().unwrap();

    // Depth 2: primary -> relay -> leaf; the leaf serves reads.
    let primary_addr = primary.addr();
    let mut relay = relay_node(primary_addr);
    let mut leaf = relay_node(relay.relay_addr().unwrap());
    let leaf_addr = leaf.relay_addr().unwrap();

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let done_ref = &done;
        // Concurrent writers churning other keys and publishing.
        s.spawn(move || {
            let mut churn = Client::connect(primary_addr).unwrap();
            let mut round = 0i64;
            while !done_ref.load(std::sync::atomic::Ordering::Acquire) {
                round += 1;
                churn.insert(-round, round).unwrap();
                churn.publish().unwrap();
            }
        });
        // The pump threads keeping the chain flowing.
        s.spawn(move || {
            while !done_ref.load(std::sync::atomic::Ordering::Acquire) {
                relay.pump(Duration::from_millis(5)).expect("relay pump");
            }
        });
        s.spawn(move || {
            while !done_ref.load(std::sync::atomic::Ordering::Acquire) {
                leaf.pump(Duration::from_millis(5)).expect("leaf pump");
            }
        });

        // The session under test: write to the primary, read through
        // the leaf, threading one token.
        let mut writer = Client::connect(primary_addr).unwrap();
        let mut reader = Client::connect(leaf_addr).unwrap();
        let mut token = SessionToken::default();
        let mut last_served = 0u64;
        for round in 1..=20i64 {
            writer.insert_tracked(7, round, &mut token).unwrap();
            // The watermark names the next (unpublished) epoch; publish
            // so it exists and can propagate down the chain.
            writer.publish().unwrap();
            let floor = token.epoch();
            let mut value = None;
            for attempt in 0.. {
                match reader.get_at(7, &mut token, 2000) {
                    Ok(v) => {
                        value = Some(v);
                        break;
                    }
                    // The leaf can answer Stale while the push is in
                    // flight; keep waiting — the pump threads will get
                    // it there.
                    Err(ClientError::Server(pathcopy_server::WireError::Stale(_))) => {
                        assert!(attempt < 50, "leaf never reached epoch {floor}");
                    }
                    Err(e) => panic!("leaf read failed: {e}"),
                }
            }
            assert_eq!(
                value,
                Some(Some(round)),
                "read-your-writes violated at round {round}"
            );
            assert!(token.epoch() >= floor, "served below the watermark");
            assert!(token.epoch() >= last_served, "token went backwards");
            last_served = token.epoch();
        }
        done.store(true, std::sync::atomic::Ordering::Release);
    });
    primary.shutdown();
}
