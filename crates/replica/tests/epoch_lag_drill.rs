//! The `epoch_lag` alerting drill from docs/OPERATIONS.md, end to end:
//! on a primary → relay → leaf chain, the leaf's `epoch_lag` histogram
//! reads a steady `1` while pushes flow, breaches the documented alert
//! threshold (`max > 1`) when a push is lost, and a post-recovery
//! windowed scrape (`HistogramSnapshot::delta`) drops back under it.

use std::net::SocketAddr;
use std::time::Duration;

use pathcopy_replica::PushReplica;
use pathcopy_server::backend::ShardedServe;
use pathcopy_server::{backend, Client, ServerConfig, ServerHandle};

/// The alert threshold OPERATIONS.md tells operators to page on:
/// steady-state lag is exactly 1 (every epoch arrives as its own
/// frame), so any sample above it is backlog.
const LAG_ALERT: u64 = 1;

fn primary_server() -> ServerHandle {
    pathcopy_server::spawn(
        Box::new(ShardedServe::with_shards(8)),
        ServerConfig {
            feed_capacity: 32,
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral loopback port")
}

fn push_node(addr: SocketAddr) -> PushReplica {
    PushReplica::connect(addr, backend::by_name("sharded_map_8").unwrap())
        .expect("connect push replica")
}

/// Pumps `relay` then `leaf` (upstream before downstream) until both
/// have applied `target`.
fn pump_chain(relay: &mut PushReplica, leaf: &mut PushReplica, target: u64) {
    for _ in 0..2000 {
        if relay.applied_epoch() >= target && leaf.applied_epoch() >= target {
            return;
        }
        if relay.applied_epoch() < target {
            relay.pump(Duration::from_millis(20)).expect("relay pump");
        }
        if leaf.applied_epoch() < target {
            leaf.pump(Duration::from_millis(20)).expect("leaf pump");
        }
    }
    panic!(
        "chain stalled below epoch {target}: relay={} leaf={}",
        relay.applied_epoch(),
        leaf.applied_epoch()
    );
}

#[test]
fn epoch_lag_breaches_on_push_loss_and_recovers() {
    let primary = primary_server();
    let mut writer = Client::connect(primary.addr()).unwrap();
    writer.insert(0, 0).unwrap();
    writer.publish().unwrap();

    let mut relay = push_node(primary.addr());
    relay
        .serve_relay(ServerConfig::with_workers(2))
        .expect("bind relay listener");
    let mut leaf = push_node(relay.relay_addr().unwrap());
    let leaf_metrics = leaf.metrics();

    // Healthy baseline: pushes arrive one epoch at a time, so every
    // lag sample is exactly 1 — at the alert threshold, never above.
    for round in 1..=5i64 {
        writer.insert(round, round).unwrap();
        let epoch = writer.publish().unwrap();
        pump_chain(&mut relay, &mut leaf, epoch);
    }
    let baseline = leaf_metrics.epoch_lag_snapshot();
    assert!(baseline.count() >= 5, "baseline must have lag samples");
    assert_eq!(
        baseline.max(),
        LAG_ALERT,
        "a healthy chain reads a steady lag of 1"
    );

    // Inject the fault: the relay forwards the next epoch, but the leaf
    // discards the push unapplied — the state a lossy subscriber is in.
    writer.insert(100, 100).unwrap();
    let lost = writer.publish().unwrap();
    while relay.applied_epoch() < lost {
        relay.pump(Duration::from_millis(20)).expect("relay pump");
    }
    let dropped = leaf
        .drop_one_push(Duration::from_secs(2))
        .expect("receive the doomed push");
    assert_eq!(dropped, Some(lost), "the injected loss must be observed");

    // The next push names epoch `lost + 1` while the leaf still sits at
    // `lost - 1`: the on-wire watermark makes the backlog measurable,
    // the histogram breaches, and the gap repair catches the leaf up.
    writer.insert(101, 101).unwrap();
    let next = writer.publish().unwrap();
    pump_chain(&mut relay, &mut leaf, next);
    let breached = leaf_metrics.epoch_lag_snapshot();
    assert!(
        breached.max() > LAG_ALERT,
        "push loss must breach the alert threshold: max={}",
        breached.max()
    );
    assert_eq!(leaf.push_stats().push_gaps, 1, "exactly the injected gap");

    // Recovery: with the chain flowing again, a *windowed* scrape —
    // the same bucket-wise delta `loadgen --metrics-interval` prints —
    // shows the last window back at the healthy ceiling, even though
    // the since-boot max stays pinned at the breach.
    for round in 200..=204i64 {
        writer.insert(round, round).unwrap();
        let epoch = writer.publish().unwrap();
        pump_chain(&mut relay, &mut leaf, epoch);
    }
    let after = leaf_metrics.epoch_lag_snapshot();
    let window = after.delta(&breached);
    assert!(window.count() >= 5, "recovery window must have samples");
    assert!(
        window.max() <= LAG_ALERT,
        "recovered chain must read healthy in the window: max={}",
        window.max()
    );
    assert!(
        after.max() > LAG_ALERT,
        "since-boot max keeps the breach on record"
    );
    primary.shutdown();
}

/// The drill is only actionable if the runbook tells operators what to
/// watch and what to page on — pin the documentation the same way
/// `doc_contract` pins the wire format.
#[test]
fn operations_runbook_documents_the_drill() {
    let doc = include_str!("../../../docs/OPERATIONS.md");
    assert!(
        doc.contains("epoch_lag"),
        "OPERATIONS.md must describe the epoch_lag histogram"
    );
    assert!(
        doc.contains("max > 1"),
        "OPERATIONS.md must state the alert threshold (max > 1)"
    );
    assert!(
        doc.contains("epoch_lag_drill"),
        "OPERATIONS.md must point at this drill by name"
    );
}
