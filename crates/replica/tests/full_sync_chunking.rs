//! Regression for the `FrameTooLarge` bootstrap failure: a replica
//! bootstrapping a map whose full state exceeds one wire frame must
//! succeed, because `FullSync` replies are chunked into bounded pages.
//!
//! In release the map is genuinely **larger than one frame** (entries
//! encode past `MAX_FRAME_LEN`), and the test proves it by showing that
//! the *unchunked* scan path refuses exactly where the chunked sync
//! sails through. The debug profile uses a smaller map (the page
//! machinery is identical) to keep `cargo test` quick.

use pathcopy_concurrent::ShardedTreapMap;
use pathcopy_replica::{Replica, SyncOutcome};
use pathcopy_server::backend::ShardedServe;
use pathcopy_server::proto::SYNC_PAGE_MAX_ENTRIES;
use pathcopy_server::{backend, Client, ClientError, ServerConfig, WireError, MAX_FRAME_LEN};

#[cfg(debug_assertions)]
const MAP_SIZE: i64 = 200_000;
#[cfg(not(debug_assertions))]
const MAP_SIZE: i64 = 1_100_000; // 16 bytes/entry => ~16.8 MB > MAX_FRAME_LEN

#[test]
fn bootstrap_of_a_map_larger_than_one_frame_never_trips_the_cap() {
    // Engine-side prefill (the wire would make the test about prefill).
    let map: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(8);
    for k in 0..MAP_SIZE {
        map.insert(k, k);
    }
    let server = pathcopy_server::spawn(
        Box::new(ShardedServe::new(map)),
        ServerConfig::with_workers(2),
    )
    .expect("bind ephemeral loopback port");
    let mut c = Client::connect(server.addr()).unwrap();

    if (MAP_SIZE as u64) * 16 > MAX_FRAME_LEN as u64 {
        // The map really is larger than one frame: the unchunked scan
        // path refuses (politely — the connection survives).
        let err = c.range(None, .., 0).unwrap_err();
        assert!(
            matches!(err, ClientError::Server(WireError::TooLarge)),
            "unlimited range of a >frame map must refuse, got {err:?}"
        );
    }

    // Raw page check: even asking for an absurd page size comes back
    // clamped to the server's bound.
    let (epoch, first_page, done) = c.full_sync_page(None, None, u32::MAX).unwrap();
    assert!(!done);
    assert_eq!(first_page.len(), SYNC_PAGE_MAX_ENTRIES as usize);

    // The replica bootstraps the whole thing through bounded segments.
    let mut replica =
        Replica::connect(server.addr(), backend::by_name("sharded_map_8").unwrap()).unwrap();
    let out = replica.sync_once().unwrap();
    let SyncOutcome::FullSync { entries, .. } = out else {
        panic!("bootstrap must be a full sync, got {out:?}")
    };
    assert_eq!(entries, MAP_SIZE as usize);
    assert_eq!(replica.store().len(), MAP_SIZE as usize);
    assert_eq!(replica.store().get(MAP_SIZE - 1), Some(MAP_SIZE - 1));

    // And it took more than one page to get there.
    let pages_needed = (MAP_SIZE as u64).div_ceil(SYNC_PAGE_MAX_ENTRIES as u64);
    assert!(pages_needed > 1, "test must exercise chunking");
    let stats = replica.stats();
    assert!(
        stats.full_bytes >= MAP_SIZE as u64 * 16,
        "full sync moved the whole map ({} bytes)",
        stats.full_bytes
    );
    drop(c);
    let _ = epoch;
    server.shutdown();
}
