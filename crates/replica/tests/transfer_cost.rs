//! The acceptance claim, as an assertion: on a 100k-key map with
//! localized writes, snapshot-diff catch-up moves **asymptotically fewer
//! bytes** than a full sync — O(changes) vs O(n) — measured with the
//! client's exact wire-byte counters.

use pathcopy_concurrent::ShardedTreapMap;
use pathcopy_replica::{Replica, SyncOutcome};
use pathcopy_server::backend::ShardedServe;
use pathcopy_server::{backend, Client, ServerConfig};

const MAP_SIZE: i64 = 100_000;
const LOCAL_WRITES: i64 = 500;

#[test]
fn diff_catch_up_moves_asymptotically_fewer_bytes_than_full_sync() {
    let map: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(8);
    for k in 0..MAP_SIZE {
        map.insert(k, k);
    }
    let server = pathcopy_server::spawn(
        Box::new(ShardedServe::new(map)),
        ServerConfig::with_workers(2),
    )
    .expect("bind ephemeral loopback port");
    let addr = server.addr();

    // Bootstrap a replica: this is the O(n) full transfer.
    let mut replica = Replica::connect(addr, backend::by_name("sharded_map_8").unwrap()).unwrap();
    assert!(matches!(
        replica.sync_once().unwrap(),
        SyncOutcome::FullSync { .. }
    ));

    // Localized write burst: 500 keys inside a 2 000-key window of the
    // 100k key space, then publish.
    let mut writer = Client::connect(addr).unwrap();
    for i in 0..LOCAL_WRITES {
        let k = (i * 7) % 2_000; // repeated keys: real overwrite locality
        writer.insert(k, -i).unwrap();
    }
    writer.publish().unwrap();

    // Catch up via the diff path.
    let out = replica.sync_once().unwrap();
    let SyncOutcome::Diff { changes, .. } = out else {
        panic!("catch-up must be incremental, got {out:?}")
    };
    assert!(
        changes <= LOCAL_WRITES as usize,
        "diff is bounded by touched keys"
    );
    assert!(changes > 0);

    let stats = replica.stats();
    assert!(
        stats.full_bytes >= (MAP_SIZE as u64) * 16,
        "full sync carried the whole map: {} bytes",
        stats.full_bytes
    );
    // The asymptotic gap: the full transfer moved the 100k-entry map,
    // the diff moved only the localized change set. Demand a wide margin
    // (50x) so the assertion survives framing overhead forever.
    assert!(
        stats.diff_bytes * 50 < stats.full_bytes,
        "diff bytes ({}) not asymptotically below full-sync bytes ({})",
        stats.diff_bytes,
        stats.full_bytes
    );
    // Sanity on the replica's view after both paths: a key far outside
    // the write window is untouched, and the map size is intact.
    assert_eq!(replica.store().len(), MAP_SIZE as usize);
    assert_eq!(replica.store().get(50_000), Some(50_000));
    server.shutdown();
}
