//! BTreeMap-oracle convergence: arbitrary op sequences on the primary,
//! a randomized pull schedule on the replica, and a deliberately tiny
//! feed ring — after **every** sync the replica's store must equal the
//! primary state at its applied epoch, whether it got there by an
//! incremental diff or by the lag-past-ring full-resync path.

use std::collections::BTreeMap;
use std::ops::Bound;

use proptest::prelude::*;

use pathcopy_replica::{Replica, SyncOutcome};
use pathcopy_server::backend::ShardedServe;
use pathcopy_server::{backend, Client, ServerConfig, ServerHandle};

#[derive(Debug, Clone)]
enum PrimaryOp {
    Insert(i64, i64),
    Remove(i64),
}

fn arb_op() -> impl Strategy<Value = PrimaryOp> {
    // A small key space so removes and overwrites actually hit.
    prop_oneof![
        (0i64..48, any::<i64>()).prop_map(|(k, v)| PrimaryOp::Insert(k, v)),
        (0i64..48).prop_map(PrimaryOp::Remove),
    ]
}

fn feed_server(feed_capacity: usize) -> ServerHandle {
    pathcopy_server::spawn(
        Box::new(ShardedServe::with_shards(8)),
        ServerConfig {
            feed_capacity,
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral loopback port")
}

fn replica_state(replica: &Replica) -> Vec<(i64, i64)> {
    let (entries, complete) =
        replica
            .store()
            .snapshot()
            .range(Bound::Unbounded, Bound::Unbounded, 0);
    assert!(complete, "unlimited scan is complete");
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replica_equals_primary_at_every_applied_epoch(
        rounds in prop::collection::vec(prop::collection::vec(arb_op(), 0..10), 1..8),
        pulls in prop::collection::vec(any::<bool>(), 1..9),
    ) {
        // Ring of 2: skipping two pulls in a row retires the replica's
        // epoch and forces the full-resync path.
        let server = feed_server(2);
        let mut writer = Client::connect(server.addr()).unwrap();
        let mut replica = Replica::connect(
            server.addr(),
            backend::by_name("sharded_map_8").unwrap(),
        )
        .unwrap();
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();

        // Seed + bootstrap: the first sync is always a full transfer.
        writer.insert(7, 70).unwrap();
        oracle.insert(7, 70);
        let out = replica.sync_once().unwrap();
        prop_assert!(matches!(out, SyncOutcome::FullSync { .. }));
        prop_assert_eq!(
            replica_state(&replica),
            oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        );

        for (i, round) in rounds.iter().enumerate() {
            for op in round {
                match *op {
                    PrimaryOp::Insert(k, v) => {
                        writer.insert(k, v).unwrap();
                        oracle.insert(k, v);
                    }
                    PrimaryOp::Remove(k) => {
                        writer.remove(k).unwrap();
                        oracle.remove(&k);
                    }
                }
            }
            let epoch = writer.publish().unwrap();
            if pulls[i % pulls.len()] {
                let out = replica.sync_once().unwrap();
                // Whichever path it took, the replica must now equal the
                // primary state at its applied epoch. Both paths land on
                // the feed head, which (no concurrent writers here) is
                // exactly the oracle.
                match out {
                    SyncOutcome::Diff { to, .. } => prop_assert_eq!(to, epoch),
                    SyncOutcome::FullSync { to, .. } => prop_assert!(to >= epoch),
                }
                prop_assert_eq!(
                    replica_state(&replica),
                    oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
                    "replica diverged at applied epoch {}",
                    replica.applied_epoch()
                );
            }
        }

        // Final catch-up always converges.
        replica.sync_once().unwrap();
        prop_assert_eq!(
            replica_state(&replica),
            oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        );
        server.shutdown();
    }
}

#[test]
fn lagging_past_the_ring_forces_a_full_resync_that_still_converges() {
    let server = feed_server(2);
    let mut writer = Client::connect(server.addr()).unwrap();
    let mut replica =
        Replica::connect(server.addr(), backend::by_name("sharded_map_8").unwrap()).unwrap();

    for k in 0..64 {
        writer.insert(k, k).unwrap();
    }
    assert!(matches!(
        replica.sync_once().unwrap(),
        SyncOutcome::FullSync { .. }
    ));
    let bootstrapped_at = replica.applied_epoch();

    // Three publishes against a capacity-2 ring retire the replica's
    // epoch for sure.
    for round in 1..=3i64 {
        writer.insert(round, -round).unwrap();
        writer.publish().unwrap();
    }
    let before = replica.stats();
    assert_eq!(before.ring_fallbacks, 0);
    let out = replica.sync_once().unwrap();
    assert!(
        matches!(out, SyncOutcome::FullSync { .. }),
        "retired epoch must fall back to full sync, got {out:?}"
    );
    let after = replica.stats();
    assert_eq!(after.ring_fallbacks, 1, "the fallback was counted");
    assert!(after.applied_epoch > bootstrapped_at);

    // And the state is right.
    let entries = replica_state(&replica);
    assert_eq!(entries.len(), 64);
    for round in 1..=3i64 {
        assert!(entries.contains(&(round, -round)));
    }
    server.shutdown();
}

#[test]
fn diff_catch_up_applies_atomically_for_replica_readers() {
    // A reader on the replica's own served endpoint must only ever see
    // published versions: pairs (k, -k) written and published together
    // can never be observed torn, because the replica applies each epoch
    // diff as one atomic cross-shard batch.
    let server = feed_server(16);
    let addr = server.addr();
    let mut writer = Client::connect(addr).unwrap();
    writer.insert(0, 0).unwrap();
    writer.insert(1, 0).unwrap();
    writer.publish().unwrap();

    let mut replica = Replica::connect(addr, backend::by_name("sharded_map_8").unwrap()).unwrap();
    replica.sync_once().unwrap();
    let replica_server = replica.serve(ServerConfig::with_workers(2)).unwrap();
    let replica_addr = replica_server.addr();

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let done_ref = &done;
        s.spawn(move || {
            for round in 1..=60i64 {
                writer.insert(0, round).unwrap();
                writer.insert(1, -round).unwrap();
                writer.publish().unwrap();
            }
            done_ref.store(true, std::sync::atomic::Ordering::Release);
        });
        s.spawn(move || {
            // The sync loop, racing the writer.
            while !done_ref.load(std::sync::atomic::Ordering::Acquire) {
                replica.sync_once().unwrap();
            }
            replica.sync_once().unwrap();
        });

        let mut reader = Client::connect(replica_addr).unwrap();
        let mut coherent_reads = 0u32;
        while !done.load(std::sync::atomic::Ordering::Acquire) || coherent_reads < 3 {
            let (entries, complete) = reader.range(None, .., 0).unwrap();
            assert!(complete);
            let a = entries.iter().find(|(k, _)| *k == 0).map(|(_, v)| *v);
            let b = entries.iter().find(|(k, _)| *k == 1).map(|(_, v)| *v);
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a + b, 0, "replica reader saw a torn epoch: {a} vs {b}");
            }
            coherent_reads += 1;
        }
    });
    replica_server.shutdown();
    server.shutdown();
}
