//! Oracle property test for session consistency over push fan-out:
//! a relay chain of randomized depth (1–3), a per-epoch `BTreeMap`
//! oracle on the side, and a randomized interleaving of writes,
//! publishes, pump steps, and injected push loss (which forces the
//! pull catch-up path). Invariants checked at every read through the
//! chain's last node:
//!
//! * **read-your-writes** — a `GetAt` floored at the session token
//!   never serves below the token, and the value equals the oracle's
//!   state at the served epoch;
//! * **monotonic reads** — the served epoch never goes backwards
//!   within a session;
//! * **epoch integrity** — whatever mix of pushes and catch-up pulls
//!   got a node to epoch `E`, its store equals the oracle at `E`.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::time::Duration;

use proptest::prelude::*;

use pathcopy_replica::PushReplica;
use pathcopy_server::backend::ShardedServe;
use pathcopy_server::{backend, Client, ClientError, ServerConfig, SessionToken, WireError};

#[derive(Debug, Clone)]
enum Step {
    /// Write `key -> value` on the primary, tracking the watermark.
    Write(i64, i64),
    /// Publish the primary's state as the next epoch.
    Publish,
    /// Drop one in-flight push at chain level `i % depth` — the next
    /// pump there must repair via pull.
    LosePush(usize),
    /// Read `key` through the end of the chain with the session token.
    Read(i64),
}

fn arb_step() -> impl Strategy<Value = Step> {
    // A small key space so overwrites actually collide. Write appears
    // twice to skew the mix toward mutation (the shim's `prop_oneof!`
    // has no weighted arms).
    prop_oneof![
        (0i64..12, any::<i64>()).prop_map(|(k, v)| Step::Write(k, v)),
        (12i64..24, any::<i64>()).prop_map(|(k, v)| Step::Write(k % 12, v)),
        Just(Step::Publish),
        (0usize..3).prop_map(Step::LosePush),
        (0i64..12).prop_map(Step::Read),
    ]
}

/// Pumps the chain upstream-to-downstream until every node reaches
/// `target` (bounded; panics on a stall).
fn pump_chain(chain: &mut [PushReplica], target: u64) {
    for attempt in 0..2000 {
        if chain.iter().all(|n| n.applied_epoch() >= target) {
            return;
        }
        for node in chain.iter_mut() {
            if node.applied_epoch() < target {
                match node.pump(Duration::from_millis(20)).expect("pump") {
                    // A lost push followed by silence never repairs by
                    // itself; after a few idle beats fall back to the
                    // anti-entropy pull.
                    pathcopy_replica::PushOutcome::Idle if attempt >= 3 => {
                        node.sync_now().expect("anti-entropy sync");
                    }
                    _ => {}
                }
            }
        }
    }
    let at: Vec<u64> = chain.iter().map(|n| n.applied_epoch()).collect();
    panic!("chain stalled below epoch {target}: applied = {at:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tokens_are_honored_through_randomized_relay_chains(
        depth in 1usize..=3,
        steps in prop::collection::vec(arb_step(), 8..40),
    ) {
        let primary = pathcopy_server::spawn(
            Box::new(ShardedServe::with_shards(8)),
            ServerConfig { feed_capacity: 4, workers: 2, ..ServerConfig::default() },
        ).expect("bind primary");
        // The tiny feed ring makes injected loss regularly outrun
        // retention, so catch-up exercises the full-resync path too.
        let mut writer = Client::connect(primary.addr()).unwrap();

        // Epoch-indexed oracle: oracle[e] is the primary state at e.
        let mut live: BTreeMap<i64, i64> = BTreeMap::new();
        live.insert(0, 0);
        writer.insert(0, 0).unwrap();
        writer.publish().unwrap();
        let mut oracle: Vec<BTreeMap<i64, i64>> = vec![BTreeMap::new(), live.clone()];

        // The chain: each node subscribes to the previous one's relay
        // endpoint; every node serves a relay feed so it can both chain
        // and answer watermarked reads.
        let mut chain: Vec<PushReplica> = Vec::new();
        let mut upstream = primary.addr();
        for _ in 0..depth {
            let mut node = PushReplica::connect(
                upstream,
                backend::by_name("sharded_map_8").unwrap(),
            ).expect("connect chain node");
            upstream = node.serve_relay(ServerConfig::with_workers(2)).expect("serve relay");
            chain.push(node);
        }
        let mut reader = Client::connect(upstream).unwrap();
        let mut token = SessionToken::default();
        let mut last_served = 0u64;

        for step in &steps {
            match *step {
                Step::Write(k, v) => {
                    writer.insert_tracked(k, v, &mut token).unwrap();
                    live.insert(k, v);
                }
                Step::Publish => {
                    writer.publish().unwrap();
                    oracle.push(live.clone());
                }
                Step::LosePush(i) => {
                    let node = &mut chain[i % depth];
                    // Losing a push is only a fault if one was in
                    // flight; quiet feeds yield None and that is fine.
                    node.drop_one_push(Duration::from_millis(5)).unwrap();
                }
                Step::Read(k) => {
                    // The token may name an epoch not yet published
                    // (a tracked write since the last publish): publish
                    // first, as a session-consistent client must.
                    if token.epoch() >= oracle.len() as u64 {
                        writer.publish().unwrap();
                        oracle.push(live.clone());
                    }
                    let head = oracle.len() as u64 - 1;
                    pump_chain(&mut chain, head);
                    let floor = token.epoch();
                    let value = match reader.get_at(k, &mut token, 2000) {
                        Ok(v) => v,
                        Err(ClientError::Server(WireError::Stale(at))) => {
                            panic!("pumped chain still below {floor}: at {at}")
                        }
                        Err(e) => panic!("read failed: {e}"),
                    };
                    let served = token.epoch();
                    prop_assert!(served >= floor, "served {served} below floor {floor}");
                    prop_assert!(served >= last_served, "non-monotonic: {served} < {last_served}");
                    prop_assert!(served <= head, "served past the published head");
                    last_served = served;
                    prop_assert_eq!(
                        value,
                        oracle[served as usize].get(&k).copied(),
                        "value diverged from oracle at epoch {}", served
                    );
                }
            }
        }

        // Drain: converge everything and verify full-state equality at
        // the head, whatever mix of pushes and repairs each node took.
        writer.publish().unwrap();
        oracle.push(live.clone());
        let head = oracle.len() as u64 - 1;
        pump_chain(&mut chain, head);
        for (i, node) in chain.iter().enumerate() {
            let applied = node.applied_epoch();
            prop_assert!(applied >= head);
            let (entries, complete) = node
                .replica()
                .store()
                .snapshot()
                .range(Bound::Unbounded, Bound::Unbounded, 0);
            prop_assert!(complete);
            let expect: Vec<(i64, i64)> = oracle[head as usize]
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect();
            prop_assert_eq!(&entries, &expect, "chain node {} diverged", i);
        }
        primary.shutdown();
    }
}
