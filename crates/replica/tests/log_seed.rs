//! Log-seeded replica bootstrap: a replica loads its store from the
//! primary's durable epoch log with **zero** wire bytes — asserted via
//! the client's exact `ByteCounters` accounting — and then converges
//! through the normal incremental diff path.

use std::path::PathBuf;
use std::sync::Arc;

use pathcopy_durable::{EpochLog, FeedPersister, LogConfig};
use pathcopy_replica::{Replica, SyncOutcome};
use pathcopy_server::backend::{self, ShardedServe};
use pathcopy_server::{Client, FeedSink, ServerConfig, ServerHandle};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pathcopy-logseed-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A primary whose published epochs are persisted to `dir`.
fn logged_server(dir: &std::path::Path) -> (ServerHandle, Arc<EpochLog>) {
    let (log, _) = EpochLog::open(
        dir,
        LogConfig {
            fsync: false,
            ..LogConfig::default()
        },
    )
    .unwrap();
    let log = Arc::new(log);
    let persister = FeedPersister::new(Arc::clone(&log));
    let server = pathcopy_server::spawn(
        Box::new(ShardedServe::with_shards(8)),
        ServerConfig {
            // The refusal test below holds four connections at once
            // (writer + three replicas); a worker serves one connection
            // for its lifetime, so the pool must cover all of them.
            workers: 4,
            feed_sink: Some(persister as Arc<dyn FeedSink>),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, log)
}

#[test]
fn log_seed_moves_zero_wire_bytes_then_converges_via_diffs() {
    let dir = scratch("zero-bytes");
    let (server, log) = logged_server(&dir);
    let mut writer = Client::connect(server.addr()).unwrap();
    for k in 0..200i64 {
        writer.insert(k, k * 3).unwrap();
    }
    let seeded_epoch = writer.publish().unwrap();
    assert_eq!(log.head(), seeded_epoch, "publish persisted before reply");

    // Bootstrap from the log: the connection exists but stays silent.
    let mut replica =
        Replica::connect(server.addr(), backend::by_name("sharded_map_8").unwrap()).unwrap();
    let head = replica.seed_from_log(&log).unwrap();
    assert_eq!(head, seeded_epoch);
    let wire = replica.primary_wire_bytes();
    assert_eq!(
        (wire.sent, wire.received),
        (0, 0),
        "log seeding must move zero wire bytes"
    );
    let stats = replica.stats();
    assert_eq!(stats.applied_epoch, seeded_epoch);
    assert_eq!((stats.log_seeds, stats.log_seed_entries), (1, 200));
    assert_eq!((stats.full_syncs, stats.diff_pulls), (0, 0));
    assert_eq!(replica.store().get(7), Some(21), "seeded state is live");

    // Converge: new writes flow down the cheap diff path, never a full
    // sync — the seeded epoch is still in the primary's feed ring.
    writer.insert(1000, 1).unwrap();
    writer.remove(0).unwrap();
    writer.publish().unwrap();
    let out = replica.sync_once().unwrap();
    assert!(
        matches!(out, SyncOutcome::Diff { changes: 2, .. }),
        "expected a 2-entry diff, got {out:?}"
    );
    let stats = replica.stats();
    assert_eq!(stats.full_syncs, 0, "no full sync, ever");
    assert_eq!(
        stats.full_bytes, 0,
        "exact accounting: zero full-sync bytes"
    );
    assert!(stats.diff_bytes > 0, "the diff did move (few) bytes");
    assert_eq!(replica.store().get(1000), Some(1));
    assert_eq!(replica.store().get(0), None);
    assert_eq!(replica.store().len(), 200, "-1 removed, +1 added");

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn seeding_a_synced_or_dirty_replica_is_refused() {
    let dir = scratch("refused");
    let (server, log) = logged_server(&dir);
    let mut writer = Client::connect(server.addr()).unwrap();
    writer.insert(1, 1).unwrap();
    writer.publish().unwrap();

    // Already synced over the wire: seeding would double-apply.
    let mut synced =
        Replica::connect(server.addr(), backend::by_name("sharded_map_8").unwrap()).unwrap();
    synced.sync_once().unwrap();
    let err = synced.seed_from_log(&log).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // Never synced but the store has local writes: same refusal.
    let dirty_store = backend::by_name("sharded_map_8").unwrap();
    dirty_store.insert(9, 9);
    let mut dirty = Replica::connect(server.addr(), dirty_store).unwrap();
    let err = dirty.seed_from_log(&log).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // An empty log seeds nothing and leaves the replica bootstrappable.
    let empty_dir = scratch("empty-log");
    let (empty_log, _) = EpochLog::open(&empty_dir, LogConfig::default()).unwrap();
    let mut fresh =
        Replica::connect(server.addr(), backend::by_name("sharded_map_8").unwrap()).unwrap();
    assert_eq!(fresh.seed_from_log(&empty_log).unwrap(), 0);
    assert_eq!(fresh.applied_epoch(), 0);
    assert!(matches!(
        fresh.sync_once().unwrap(),
        SyncOutcome::FullSync { .. }
    ));

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&empty_dir).unwrap();
}
