//! The replica engine: bootstrap from a chunked full sync, then follow
//! the primary's version feed with pruned snapshot-to-snapshot diffs.
//!
//! A [`Replica`] owns a connection to the primary and a local store (any
//! [`ServeBackend`]). [`Replica::sync_once`] drives one catch-up step:
//!
//! * **Diff path** — `PullDiff(applied_epoch)` fetches everything that
//!   changed between the replica's epoch and the feed head; the entries
//!   are converted with
//!   [`diff_to_ops`] and applied through the store's
//!   [`transact`](ServeBackend::transact). On a backend with atomic
//!   batches (the sharded map) the whole diff flips in **one**
//!   linearizable operation, so local readers only ever observe
//!   published primary versions — never a half-applied epoch.
//! * **Full-sync fallback** — when the replica's epoch has been retired
//!   from the primary's feed ring (it lagged too far), or the diff reply
//!   overflows the frame cap, the replica bootstraps again: it pages the
//!   whole pinned head version down in bounded
//!   [`SyncPage`](pathcopy_server::Response::SyncPage) segments,
//!   computes the *local* difference against its own store, and applies
//!   that reconciliation — again as one atomic batch.
//!
//! The engine keeps a [`ReplicaStats`] block counting pulls, applied
//! entries, and — via the client's [`wire_bytes`](Client::wire_bytes)
//! accounting — the exact bytes each path moved. That counter is the
//! experimental proof of the design's point: diff catch-up transfers
//! O(changes) bytes while a full sync transfers O(n).

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use pathcopy_concurrent::{diff_to_ops, BatchOp};
use pathcopy_server::{
    Client, ClientError, Epoch, ServeBackend, ServerConfig, ServerHandle, WireError,
};

/// What one [`Replica::sync_once`] step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// Caught up via an incremental epoch diff (`changes` entries;
    /// `0` = the replica was already at the head).
    Diff {
        /// The epoch the replica is now at.
        to: Epoch,
        /// Number of diff entries applied.
        changes: usize,
    },
    /// Bootstrapped (or re-bootstrapped after lagging past the feed
    /// ring) via a chunked full sync.
    FullSync {
        /// The epoch the replica is now at.
        to: Epoch,
        /// Entries transferred (the pinned version's size).
        entries: usize,
    },
}

/// Monotone counters describing a replica's sync history; read them as a
/// [`ReplicaStatsSnapshot`] via [`Replica::stats`]. All counters are
/// relaxed atomics, shareable across threads via
/// [`Replica::stats_handle`].
#[derive(Debug, Default)]
pub struct ReplicaStats {
    applied_epoch: AtomicU64,
    head_seen: AtomicU64,
    diff_pulls: AtomicU64,
    full_syncs: AtomicU64,
    diff_entries: AtomicU64,
    full_entries: AtomicU64,
    diff_bytes: AtomicU64,
    full_bytes: AtomicU64,
    ring_fallbacks: AtomicU64,
    log_seeds: AtomicU64,
    log_seed_entries: AtomicU64,
}

impl ReplicaStats {
    /// Plain-data copy of every counter.
    pub fn snapshot(&self) -> ReplicaStatsSnapshot {
        ReplicaStatsSnapshot {
            applied_epoch: self.applied_epoch.load(Relaxed),
            head_seen: self.head_seen.load(Relaxed),
            diff_pulls: self.diff_pulls.load(Relaxed),
            full_syncs: self.full_syncs.load(Relaxed),
            diff_entries: self.diff_entries.load(Relaxed),
            full_entries: self.full_entries.load(Relaxed),
            diff_bytes: self.diff_bytes.load(Relaxed),
            full_bytes: self.full_bytes.load(Relaxed),
            ring_fallbacks: self.ring_fallbacks.load(Relaxed),
            log_seeds: self.log_seeds.load(Relaxed),
            log_seed_entries: self.log_seed_entries.load(Relaxed),
        }
    }
}

/// Plain-data copy of [`ReplicaStats`] — the `replica_bytes` /
/// `replica_lag` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaStatsSnapshot {
    /// The feed epoch the local store currently equals.
    pub applied_epoch: Epoch,
    /// Newest primary epoch this replica has observed.
    pub head_seen: Epoch,
    /// Completed incremental catch-ups ([`SyncOutcome::Diff`]).
    pub diff_pulls: u64,
    /// Completed full syncs ([`SyncOutcome::FullSync`]).
    pub full_syncs: u64,
    /// Diff entries applied across all incremental catch-ups.
    pub diff_entries: u64,
    /// Entries transferred across all full syncs.
    pub full_entries: u64,
    /// Wire bytes (both directions) spent on incremental catch-ups.
    pub diff_bytes: u64,
    /// Wire bytes (both directions) spent on full syncs.
    pub full_bytes: u64,
    /// Times the replica found its epoch retired from the feed ring and
    /// had to fall back to a full sync.
    pub ring_fallbacks: u64,
    /// Bootstraps performed from a durable epoch log instead of the
    /// wire ([`Replica::seed_from_log`] — zero `FullSync` bytes).
    pub log_seeds: u64,
    /// Entries materialized by log-seeded bootstraps.
    pub log_seed_entries: u64,
}

impl ReplicaStatsSnapshot {
    /// How many epochs the replica trails the newest head it has seen
    /// (`0` = caught up as of the last sync).
    pub fn lag(&self) -> u64 {
        self.head_seen.saturating_sub(self.applied_epoch)
    }
}

/// A read replica of a `pathcopy-server` primary; see the module docs.
pub struct Replica {
    client: Client,
    store: Arc<dyn ServeBackend>,
    stats: Arc<ReplicaStats>,
}

impl Replica {
    /// Connects to the primary at `addr` and adopts `store` as the local
    /// backend the synced state is materialized into (typically a fresh
    /// [`backend::by_name`](pathcopy_server::backend::by_name) instance;
    /// pick one with atomic batches — the sharded map — if local readers
    /// must only ever observe published versions).
    ///
    /// The store starts unsynced: call [`sync_once`](Self::sync_once)
    /// (the first call bootstraps with a full sync).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from establishing the TCP connection to the
    /// primary.
    pub fn connect<A: ToSocketAddrs>(addr: A, store: Box<dyn ServeBackend>) -> io::Result<Self> {
        Ok(Replica {
            client: Client::connect(addr)?,
            store: Arc::from(store),
            stats: Arc::new(ReplicaStats::default()),
        })
    }

    /// The local store, shared: reads served from this handle see the
    /// replica's latest applied epoch. Serve it over TCP with
    /// [`serve`](Self::serve).
    pub fn store(&self) -> Arc<dyn ServeBackend> {
        Arc::clone(&self.store)
    }

    /// Spawns a TCP server over the replica's store (the same
    /// [`ServeBackend`] surface the primary serves), so load generators
    /// and clients can point read traffic at this replica while
    /// [`sync_once`](Self::sync_once) keeps catching it up.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the replica's listener (see
    /// [`pathcopy_server::spawn`]).
    pub fn serve(&self, config: ServerConfig) -> io::Result<ServerHandle> {
        pathcopy_server::spawn(Box::new(self.store()), config)
    }

    /// The feed epoch the local store currently equals (`0` = never
    /// synced).
    pub fn applied_epoch(&self) -> Epoch {
        self.stats.applied_epoch.load(Relaxed)
    }

    /// Plain-data copy of the sync counters.
    pub fn stats(&self) -> ReplicaStatsSnapshot {
        self.stats.snapshot()
    }

    /// Shared handle to the live counters (for reporting threads while
    /// the replica syncs elsewhere).
    pub fn stats_handle(&self) -> Arc<ReplicaStats> {
        Arc::clone(&self.stats)
    }

    /// Bootstraps the local store from a durable epoch log instead of a
    /// `FullSync` over the wire: replays the log's newest checkpoint
    /// plus its diff tail into the store (each epoch applied as one
    /// atomic batch) and adopts the log's head as the applied epoch —
    /// **zero wire bytes moved**. If the head is still retained in the
    /// primary's feed ring, the next [`sync_once`](Self::sync_once)
    /// continues straight down the cheap diff path; if the log was
    /// empty (`Ok(0)`), the replica stays unsynced and the next sync
    /// bootstraps over the wire as usual.
    ///
    /// Seeding replicas from a log file (shipped, or on shared storage)
    /// keeps a fleet bootstrap from hammering the primary with `O(n)`
    /// full transfers.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the replica has already synced or its store is
    /// non-empty (seeding assumes a fresh store); otherwise the
    /// underlying [`LogError`](pathcopy_durable::LogError) wrapped as
    /// an IO error.
    pub fn seed_from_log(&mut self, log: &pathcopy_durable::EpochLog) -> io::Result<Epoch> {
        if self.applied_epoch() != 0 || !self.store.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "log seeding requires a fresh, never-synced replica store",
            ));
        }
        let head = log
            .replay_into(self.store.as_ref())
            .map_err(io::Error::other)?;
        if head == 0 {
            return Ok(0); // empty log: nothing to adopt
        }
        self.stats.applied_epoch.store(head, Relaxed);
        self.stats.head_seen.fetch_max(head, Relaxed);
        self.stats.log_seeds.fetch_add(1, Relaxed);
        self.stats
            .log_seed_entries
            .fetch_add(self.store.len() as u64, Relaxed);
        Ok(head)
    }

    /// Asks the primary how far ahead its feed head is and records it;
    /// returns the current lag in epochs.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the `Subscribe` round trip.
    pub fn probe_lag(&mut self) -> Result<u64, ClientError> {
        let info = self.client.feed_info()?;
        self.stats.head_seen.fetch_max(info.head, Relaxed);
        Ok(info.head.saturating_sub(self.applied_epoch()))
    }

    /// One catch-up step: incremental diff when possible, full sync when
    /// bootstrapping or after lagging past the primary's feed ring.
    /// Idempotent at the head (returns `Diff { changes: 0 }`).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the wire. `EpochRetired`/`TooLarge`
    /// server errors are handled internally (they trigger the full-sync
    /// fallback) and are not returned.
    pub fn sync_once(&mut self) -> Result<SyncOutcome, ClientError> {
        let applied = self.applied_epoch();
        if applied == 0 {
            return self.full_resync();
        }
        let before = self.client.wire_bytes();
        match self.client.pull_diff(applied) {
            Ok((to, entries)) => {
                if !entries.is_empty() {
                    self.store.transact(&diff_to_ops(&entries));
                }
                let moved = self.client.wire_bytes().since(&before).total();
                self.stats.diff_bytes.fetch_add(moved, Relaxed);
                self.stats.diff_pulls.fetch_add(1, Relaxed);
                self.stats
                    .diff_entries
                    .fetch_add(entries.len() as u64, Relaxed);
                self.stats.applied_epoch.store(to, Relaxed);
                self.stats.head_seen.fetch_max(to, Relaxed);
                Ok(SyncOutcome::Diff {
                    to,
                    changes: entries.len(),
                })
            }
            // Lagged past the ring (or the diff no longer fits a frame):
            // bootstrap again from the head.
            Err(ClientError::Server(WireError::EpochRetired(_)))
            | Err(ClientError::Server(WireError::TooLarge)) => {
                self.stats.ring_fallbacks.fetch_add(1, Relaxed);
                self.full_resync()
            }
            Err(e) => Err(e),
        }
    }

    /// Pages the primary's head version down in bounded segments and
    /// reconciles the local store against it **atomically** (one batch
    /// holding every insert/overwrite/removal the transfer implies).
    ///
    /// If the pinned epoch is retired mid-transfer (a tiny feed ring
    /// under publish churn), the transfer restarts from a fresh pin, up
    /// to a bounded number of attempts.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the wire, including the last retirement
    /// error if every restart attempt lost its pinned epoch.
    pub fn full_resync(&mut self) -> Result<SyncOutcome, ClientError> {
        const MAX_RESTARTS: usize = 8;
        let before = self.client.wire_bytes();
        let mut last_err: Option<ClientError> = None;
        for _ in 0..MAX_RESTARTS {
            match self.try_full_transfer() {
                Ok((epoch, target)) => {
                    let transferred = target.len();
                    self.reconcile(&target);
                    let moved = self.client.wire_bytes().since(&before).total();
                    self.stats.full_bytes.fetch_add(moved, Relaxed);
                    self.stats.full_syncs.fetch_add(1, Relaxed);
                    self.stats
                        .full_entries
                        .fetch_add(transferred as u64, Relaxed);
                    self.stats.applied_epoch.store(epoch, Relaxed);
                    self.stats.head_seen.fetch_max(epoch, Relaxed);
                    return Ok(SyncOutcome::FullSync {
                        to: epoch,
                        entries: transferred,
                    });
                }
                Err(e @ ClientError::Server(WireError::EpochRetired(_))) => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("restarts only on EpochRetired"))
    }

    /// Pages one pinned epoch fully down. `Err(EpochRetired)` means the
    /// pin died mid-transfer and the caller should restart.
    fn try_full_transfer(&mut self) -> Result<(Epoch, BTreeMap<i64, i64>), ClientError> {
        let mut target = BTreeMap::new();
        let (epoch, first, mut done) = self.client.full_sync_page(None, None, 0)?;
        let mut after = first.last().map(|(k, _)| *k);
        target.extend(first);
        while !done {
            let (e, page, page_done) = self.client.full_sync_page(Some(epoch), after, 0)?;
            debug_assert_eq!(e, epoch, "server pages the pinned epoch");
            after = page.last().map(|(k, _)| *k).or(after);
            target.extend(page);
            done = page_done;
        }
        Ok((epoch, target))
    }

    /// Applies `local → target` as one batch: inserts/overwrites for
    /// entries that differ, removals for local keys the target lacks.
    /// Both sides are sorted, so this is a single two-pointer merge.
    fn reconcile(&self, target: &BTreeMap<i64, i64>) {
        let snap = self.store.snapshot();
        let (local, complete) =
            snap.range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded, 0);
        debug_assert!(complete, "unlimited range scans to completion");
        let mut ops: Vec<BatchOp<i64, i64>> = Vec::new();
        let mut incoming = target.iter().peekable();
        for (k, v) in &local {
            while let Some(&(&tk, &tv)) = incoming.peek() {
                if tk >= *k {
                    break;
                }
                ops.push(BatchOp::Insert(tk, tv)); // target-only, before k
                incoming.next();
            }
            match incoming.peek() {
                Some(&(&tk, &tv)) if tk == *k => {
                    if tv != *v {
                        ops.push(BatchOp::Insert(tk, tv));
                    }
                    incoming.next();
                }
                _ => ops.push(BatchOp::Remove(*k)), // local-only
            }
        }
        for (&tk, &tv) in incoming {
            ops.push(BatchOp::Insert(tk, tv)); // target-only tail
        }
        if !ops.is_empty() {
            self.store.transact(&ops);
        }
    }

    /// The primary's address this replica syncs from is fixed at
    /// [`connect`](Self::connect) time; this is a convenience passthrough
    /// for reporting.
    pub fn primary_wire_bytes(&self) -> pathcopy_core::ByteCountersSnapshot {
        self.client.wire_bytes()
    }

    /// The upstream connection, for the push subsystem (`push.rs`) to
    /// subscribe on the same session the sync engine pulls over.
    pub(crate) fn client(&self) -> &Client {
        &self.client
    }

    /// Stamps the store as equal to `epoch` after the push subsystem
    /// applied a pushed diff outside [`sync_once`](Self::sync_once).
    pub(crate) fn record_applied(&self, epoch: Epoch) {
        self.stats.applied_epoch.store(epoch, Relaxed);
        self.stats.head_seen.fetch_max(epoch, Relaxed);
    }
}

/// Convenience: a replica bound to a primary plus its own serving
/// endpoint, as [`cluster`] hands them out.
pub struct ReplicaNode {
    /// The sync engine (drive it with [`Replica::sync_once`]).
    pub replica: Replica,
    /// The TCP endpoint serving this replica's store.
    pub server: ServerHandle,
}

/// Stands up `n` bootstrapped read replicas of the primary at `addr`,
/// each backed by a fresh `store_backend`
/// ([`backend::by_name`](pathcopy_server::backend::by_name) name) and
/// serving on its own ephemeral loopback port with `workers_per_replica`
/// backend worker threads. Connections are multiplexed on each
/// replica's event loop, so workers size execution parallelism, not the
/// number of standing reader connections — a modest pool serves many
/// idle sessions.
///
/// # Errors
///
/// `InvalidInput` for an unknown backend name; otherwise any IO error
/// from connecting, bootstrapping (wrapped [`ClientError`]s), or
/// binding a replica's listener. Replicas already stood up when an
/// error occurs are dropped (their servers shut down).
pub fn cluster(
    addr: SocketAddr,
    n: usize,
    store_backend: &str,
    workers_per_replica: usize,
) -> io::Result<Vec<ReplicaNode>> {
    (0..n)
        .map(|_| {
            let store = pathcopy_server::backend::by_name(store_backend).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown backend {store_backend}"),
                )
            })?;
            let mut replica = Replica::connect(addr, store)?;
            replica
                .sync_once()
                .map_err(|e| io::Error::other(format!("bootstrap sync: {e}")))?;
            let server =
                replica.serve(ServerConfig::builder().workers(workers_per_replica).build())?;
            Ok(ReplicaNode { replica, server })
        })
        .collect()
}
