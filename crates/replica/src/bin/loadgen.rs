//! Load generator: N client threads with reused connections drive a
//! spawned in-process server with the workspace's Zipf read/write mix,
//! then print the bench harness's table format (throughput + latency
//! percentiles).
//!
//! ```text
//! cargo run --release --bin loadgen -- \
//!     --threads 8 --ops 100000 --backend sharded_map_8 \
//!     --read-frac 0.9 --theta 0.99 --keys 65536 \
//!     [--batch 8] [--workers 8] [--replicas 2] [--json out.jsonl] \
//!     [--log-dir /var/tmp/pathcopy-log] [--subscribe] [--relays 2] \
//!     [--metrics] [--trace [--slow-ms t]] [--metrics-interval n]
//! ```
//!
//! `--batch n` groups updates into n-op `Batch` frames (the sharded
//! backend commits them atomically via `transact`); `--json` appends one
//! JSON line per metric in the criterion shim's `BENCH_JSON` schema
//! (`{"id":...,"median_ns":...,"samples":...,"mode":...}`), so server
//! throughput joins the same perf-trajectory artifacts as the benches.
//!
//! `--pipeline n` keeps up to `n` requests in flight per thread through
//! the proto-v3 session API (`submit` + windowed `wait`) instead of
//! strict request/response alternation — per-op latency then includes
//! time queued in the window. The primary's queue depth is sized to fit
//! the window; replicas keep the default depth (64), so reads may shed
//! `Busy` if `--pipeline` exceeds it.
//!
//! `--replicas n` stands up the replication subsystem: one primary plus
//! `n` snapshot-diff replicas, each serving on its own port with a sync
//! thread pulling epoch diffs while a publisher thread advances the
//! primary's version feed. **Reads go to the replicas** (round-robin by
//! worker thread), updates to the primary — the read scale-out topology
//! the paper's O(changes) diffs make cheap. The final report includes
//! per-replica applied epochs and diff/full transfer bytes.
//!
//! `--log-dir <path>` makes the primary durable: every published epoch
//! is appended to a `pathcopy-durable` segmented log in that directory
//! (diff records between periodic checkpoints) before the publish
//! returns, and the final report prints the log's head, retained epoch
//! range, size, and fsync/IO counters. Reopening the same directory on
//! a later run recovers the head state and continues the epoch
//! sequence. Combine with `--replicas` to exercise the full
//! primary → log → replica pipeline under load.
//!
//! `--metrics` scrapes the primary's per-stage latency histograms
//! (`Request::Metrics`) after the run and prints them in Prometheus
//! text format: decode→dispatch queue wait, worker execute time, and
//! reply write/flush time per request tag, plus the durable log's
//! append+fsync distribution when `--log-dir` is active. Reading the
//! split tells you *where* a latency regression lives — queue wait
//! rises when workers are saturated, execute time when the backend
//! slows down, write time when replies outpace the sockets.
//!
//! `--subscribe` switches the replica tier from pull to **push**: each
//! replica registers for the primary's feed and applies unsolicited
//! epoch-diff frames (`PushReplica::pump`) instead of polling
//! `PullDiff`. `--relays r` (implies `--subscribe`) inserts `r` relay
//! nodes between the primary and the replicas: relays subscribe to the
//! primary, re-serve the feed under the primary's epoch numbers, and
//! the replicas subscribe to the relays round-robin — the primary's
//! push egress then scales with `r`, not with the replica count. The
//! final report prints per-node push/gap/resubscribe counters.
//!
//! `--trace` turns on the cluster-wide flight recorders: every node
//! (primary, relays, push replicas) gets a `pathcopy-trace` ring, the
//! publisher mints a sampled trace context per epoch, and the context
//! rides the proto-v3 envelope through queue → execute → append+fsync
//! → push fan-out → relay re-serve → leaf apply. After the run,
//! loadgen pulls each node's `TraceDump` over the wire and renders the
//! worst stitched trace end to end, with epoch numbers. `--slow-ms t`
//! arms slow-request capture: any traced request whose total exceeds
//! `t` ms has its span chain pinned past ring eviction on every node.
//!
//! `--metrics-interval n` prints last-window client-side latency
//! percentiles every `n` seconds (successive snapshots differenced via
//! `HistogramSnapshot::delta`), so a long run shows drift over time
//! instead of one blended end-of-run summary.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use std::sync::Arc;

use pathcopy_bench::cli::Args;
use pathcopy_bench::table::{group_thousands, Series};
use pathcopy_concurrent::BatchOp;
use pathcopy_durable::{EpochLog, FeedPersister, LogConfig};
use pathcopy_metrics::LatencyHistogram;
use pathcopy_replica::{cluster, PushOutcome, PushReplica};
use pathcopy_server::{
    backend, render_text, render_trace, trace_ids, Client, FeedSink, Flight, MetricsSource as _,
    Request, ServerConfig, SpanRecord, Ticket, TraceContext,
};
use pathcopy_workloads::{KeyDist, MixedStream, Op, OpStream as _};

fn main() {
    let args = Args::from_env();
    let threads: usize = args.get_or("threads", 4);
    let total_ops: u64 = args.get_or("ops", 100_000);
    let backend_name: String = args.get_or("backend", "sharded_map_8".to_string());
    let read_frac: f64 = args.get_or("read-frac", 0.9);
    let theta: f64 = args.get_or("theta", 0.99);
    let keys: u64 = args.get_or("keys", 65_536);
    let batch: usize = args.get_or("batch", 1);
    let pipeline: usize = args.get_or("pipeline", 1);
    let replicas: usize = args.get_or("replicas", 0);
    let relays: usize = args.get_or("relays", 0);
    let subscribe = args.has_flag("subscribe") || relays > 0;
    // Connections are multiplexed on the server's event loop, so the
    // worker count sizes backend execution parallelism only — standing
    // connections (publisher, replica sync clients, idle sessions) cost
    // no worker. Cover the driving threads, floored at the event core's
    // sweet spot for small round trips.
    let workers: usize = args.get_or("workers", threads.max(4));
    let prefill: u64 = args.get_or("prefill", keys / 2);
    let seed: u64 = args.get_or("seed", 42);
    let publish_ms: u64 = args.get_or("publish-ms", 2);
    let json: Option<String> = args.get("json").map(String::from);
    let log_dir: Option<String> = args.get("log-dir").map(String::from);
    let show_metrics = args.has_flag("metrics");
    let trace_on = args.has_flag("trace");
    let slow_ms: u64 = args.get_or("slow-ms", 0);
    let metrics_interval: u64 = args.get_or("metrics-interval", 0);

    assert!(threads >= 1, "--threads must be at least 1");
    assert!(batch >= 1, "--batch must be at least 1");
    assert!(pipeline >= 1, "--pipeline must be at least 1");

    // One flight recorder per node, all armed with the same slow-request
    // threshold so a slow epoch pins its span chain cluster-wide.
    let slow_threshold = (slow_ms > 0).then(|| Duration::from_millis(slow_ms));
    let new_flight = |name: &str| {
        let flight = Flight::new(name);
        flight.set_slow_threshold(slow_threshold);
        flight
    };

    let Some(engine) = backend::by_name(&backend_name) else {
        let names: Vec<&str> = backend::backends().iter().map(|b| b.name).collect();
        eprintln!("unknown --backend {backend_name}; available: {names:?}");
        std::process::exit(2);
    };

    // --log-dir: persist every published epoch through the feed sink,
    // continuing the epoch sequence a previous run left in the log.
    // The queue depth must fit the pipeline window or the primary would
    // shed the tail of every full window as Busy.
    let mut config = ServerConfig::builder()
        .workers(workers)
        .queue_depth(64.max(pipeline + 1))
        .build();
    let primary_flight = trace_on.then(|| new_flight("primary"));
    config.trace = primary_flight.clone();
    let mut durable: Option<(Arc<EpochLog>, Arc<FeedPersister>)> = None;
    if let Some(dir) = &log_dir {
        let (log, recovered) =
            EpochLog::open(dir, LogConfig::default()).expect("open --log-dir epoch log");
        if recovered.head > 0 {
            println!(
                "durable log: recovered head epoch {} ({} segment(s), {} byte(s) of torn tail truncated)",
                recovered.head, recovered.segments, recovered.truncated_bytes
            );
        }
        let log = Arc::new(log);
        let persister = FeedPersister::new(Arc::clone(&log));
        if let Some(flight) = &primary_flight {
            // Traced publishes then record their append+fsync span into
            // the primary's recorder, inside the publish's timeline.
            persister.attach_flight(Arc::clone(flight));
        }
        config.feed_start = log.head() + 1;
        config.feed_sink = Some(Arc::clone(&persister) as Arc<dyn FeedSink>);
        durable = Some((log, persister));
    }
    let server = pathcopy_server::spawn(engine, config).expect("bind ephemeral loopback port");
    if let Some((_, persister)) = &durable {
        // The log's append+fsync histogram joins `Request::Metrics`
        // scrapes alongside the event loop's own stages.
        server.register_metrics_source(Arc::clone(persister) as _);
    }
    let addr = server.addr();

    // Prefill through the wire in large batches, so measured traffic
    // starts from a realistically populated map.
    {
        let mut c = Client::connect(addr).expect("connect for prefill");
        let mut rng_key = seed | 1;
        for chunk_start in (0..prefill).step_by(512) {
            let ops: Vec<_> = (chunk_start..(chunk_start + 512).min(prefill))
                .map(|_| {
                    // splitmix-style scramble keeps prefill keys inside the
                    // workload's key space without an extra RNG dependency.
                    rng_key = rng_key.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
                    key_in_space(rng_key, keys)
                })
                .map(|k| BatchOp::Insert(k, k))
                .collect();
            if !ops.is_empty() {
                c.batch(&ops).expect("prefill batch");
            }
        }
    }

    // The replication tier: bootstrapped replicas serving on their own
    // ports, kept fresh by per-replica sync threads while a publisher
    // advances the primary's feed.
    // Each replica serves its share of the reader threads; size its
    // backend workers to that share so reads execute in parallel (the
    // event loop multiplexes the connections themselves).
    let readers_per_replica = threads.div_ceil(replicas.max(1)) + 1;
    let mut nodes = Vec::new();
    let mut push_nodes: Vec<PushReplica> = Vec::new();
    let mut read_addrs: Vec<std::net::SocketAddr> = Vec::new();
    // Every push node's serve address, in `push_nodes` order, for the
    // post-run `TraceDump` sweep.
    let mut trace_addrs: Vec<std::net::SocketAddr> = Vec::new();
    if subscribe {
        // The push tier: optional relays subscribed to the primary,
        // then the read replicas subscribed round-robin to the relays
        // (or straight to the primary when there are none).
        let mut relay_addrs = Vec::new();
        for r in 0..relays {
            let store = backend::by_name(&backend_name).expect("relay backend");
            let mut relay = PushReplica::connect(addr, store).expect("stand up relay");
            if trace_on {
                relay.set_trace(new_flight(&format!("relay{r}")));
            }
            let relay_addr = relay
                .serve_relay(ServerConfig::with_workers(2))
                .expect("bind relay listener");
            relay_addrs.push(relay_addr);
            trace_addrs.push(relay_addr);
            push_nodes.push(relay);
        }
        for i in 0..replicas {
            let upstream = if relay_addrs.is_empty() {
                addr
            } else {
                relay_addrs[i % relay_addrs.len()]
            };
            let store = backend::by_name(&backend_name).expect("replica backend");
            let mut leaf = PushReplica::connect(upstream, store).expect("stand up push replica");
            if trace_on {
                leaf.set_trace(new_flight(&format!("leaf{i}")));
            }
            let leaf_addr = leaf
                .serve_relay(ServerConfig::with_workers(readers_per_replica))
                .expect("bind replica listener");
            read_addrs.push(leaf_addr);
            trace_addrs.push(leaf_addr);
            push_nodes.push(leaf);
        }
        if replicas > 0 || relays > 0 {
            println!(
                "replication: push mode, {relays} relay(s) + {replicas} replica(s) \
                 bootstrapped at epoch {}; reads target the replicas",
                push_nodes.first().map_or(0, |n| n.applied_epoch())
            );
        }
    } else {
        nodes =
            cluster(addr, replicas, &backend_name, readers_per_replica).expect("stand up replicas");
        read_addrs = nodes.iter().map(|n| n.server.addr()).collect();
        if replicas > 0 {
            println!(
                "replication: {replicas} replica(s) bootstrapped at epoch {}; reads target the replicas",
                nodes[0].replica.applied_epoch()
            );
        }
    }
    let stop = AtomicBool::new(false);

    let per_thread = total_ops / threads as u64;
    let start = Instant::now();
    // One lock-free histogram replaces the old collect-and-sort vector:
    // workers record concurrently, the report reads one snapshot.
    let latency_hist = LatencyHistogram::new();
    let mut done_ops = 0u64;
    let mut synced_nodes = Vec::new();
    let mut pumped_nodes = Vec::new();

    std::thread::scope(|scope| {
        // Background replication machinery. The publisher also runs for
        // a durable-but-replica-less primary (--log-dir alone): the log
        // persists *published* epochs, so without publishes it would
        // record nothing.
        let mut sync_handles = Vec::new();
        let mut pump_handles = Vec::new();
        if replicas > 0 || relays > 0 || log_dir.is_some() || trace_on {
            let stop_ref = &stop;
            scope.spawn(move || {
                let mut publisher = Client::connect(addr).expect("publisher connect");
                // When tracing, every epoch gets its own sampled context
                // (splitmix-scrambled id, never zero) so each publish's
                // journey across the tree is one stitchable trace.
                let mut trace_seq = seed | 1;
                while !stop_ref.load(Ordering::Relaxed) {
                    if trace_on {
                        trace_seq = trace_seq
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .rotate_left(31);
                        publisher
                            .publish_traced(&TraceContext::sampled(trace_seq))
                            .expect("publish epoch");
                    } else {
                        publisher.publish().expect("publish epoch");
                    }
                    std::thread::sleep(Duration::from_millis(publish_ms));
                }
            });
        }
        if replicas > 0 {
            for node in nodes {
                let stop_ref = &stop;
                sync_handles.push(scope.spawn(move || {
                    let mut node = node;
                    while !stop_ref.load(Ordering::Relaxed) {
                        let outcome = node.replica.sync_once().expect("replica sync");
                        if let pathcopy_replica::SyncOutcome::Diff { changes: 0, .. } = outcome {
                            // At the head: don't hammer the primary.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                    node
                }));
            }
        }
        for node in push_nodes {
            let stop_ref = &stop;
            pump_handles.push(scope.spawn(move || {
                // The push duty cycle: block on the subscription,
                // apply, mirror. Gaps repair themselves on the next
                // frame; the publisher keeps frames coming.
                let mut node = node;
                while !stop_ref.load(Ordering::Relaxed) {
                    match node.pump(Duration::from_millis(5)).expect("push pump") {
                        PushOutcome::Idle
                        | PushOutcome::Stale { .. }
                        | PushOutcome::Pushed { .. }
                        | PushOutcome::CaughtUp { .. } => {}
                    }
                }
                node
            }));
        }

        if metrics_interval > 0 {
            // Windowed percentiles: successive snapshots differenced
            // with `HistogramSnapshot::delta`, so each line reflects
            // only the last window rather than the since-start blend.
            let stop_ref = &stop;
            let hist = &latency_hist;
            scope.spawn(move || {
                let window = Duration::from_secs(metrics_interval);
                let mut prev = hist.snapshot();
                let mut due = Instant::now() + window;
                while !stop_ref.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(25));
                    if Instant::now() < due {
                        continue;
                    }
                    due += window;
                    let cur = hist.snapshot();
                    let win = cur.delta(&prev);
                    prev = cur;
                    if win.count() == 0 {
                        continue;
                    }
                    println!(
                        "window[{metrics_interval}s]: ops={} p50={:.1}us p95={:.1}us \
                         p99={:.1}us max={:.1}us",
                        win.count(),
                        win.value_at_percentile(50.0) as f64 / 1e3,
                        win.value_at_percentile(95.0) as f64 / 1e3,
                        win.value_at_percentile(99.0) as f64 / 1e3,
                        win.max() as f64 / 1e3,
                    );
                }
            });
        }

        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let read_addr = if read_addrs.is_empty() {
                addr
            } else {
                read_addrs[t % read_addrs.len()]
            };
            let hist = &latency_hist;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("worker connect");
                // With replicas, reads go to this thread's replica over a
                // second connection; without, `reader` is just the primary.
                let mut reader = if read_addr == addr {
                    None
                } else {
                    Some(Client::connect(read_addr).expect("replica connect"))
                };
                let mut stream = MixedStream::new(
                    KeyDist::Zipf { n: keys, theta },
                    read_frac,
                    seed ^ (0xc2b2_ae35 + t as u64),
                );
                let mut ops_run = 0u64;
                let mut pending: Vec<BatchOp<i64, i64>> = Vec::with_capacity(batch);
                if pipeline > 1 {
                    // Windowed mode: keep up to `pipeline` tickets open
                    // per session; wait only when the window is full.
                    // Per-op latency spans submit→response, so it
                    // includes time queued behind the window.
                    let primary = client.into_session();
                    let reader = reader.map(Client::into_session);
                    let mut window: std::collections::VecDeque<(Instant, Ticket, usize)> =
                        std::collections::VecDeque::with_capacity(pipeline);
                    let drain_one =
                        |window: &mut std::collections::VecDeque<(Instant, Ticket, usize)>| {
                            let (t0, ticket, n) = window.pop_front().expect("non-empty window");
                            ticket.wait().expect("pipelined response");
                            let ns = t0.elapsed().as_nanos() as u64;
                            // One round trip carried `n` ops.
                            hist.record_n(ns / n as u64, n as u64);
                        };
                    while ops_run < per_thread {
                        let op = stream.next_op();
                        let (to_reader, req, n_ops) = if batch > 1 && op.is_update() {
                            pending.push(match op {
                                Op::Insert(k) => BatchOp::Insert(k, k),
                                Op::Remove(k) => BatchOp::Remove(k),
                                Op::Contains(_) => unreachable!("updates only"),
                            });
                            ops_run += 1;
                            if pending.len() < batch {
                                continue;
                            }
                            let n = pending.len();
                            let req = Request::Batch {
                                ops: std::mem::take(&mut pending),
                                guarded: false,
                            };
                            pending.reserve(batch);
                            (false, req, n)
                        } else {
                            ops_run += 1;
                            match op {
                                Op::Contains(k) => (reader.is_some(), Request::Get { key: k }, 1),
                                Op::Insert(k) => (false, Request::Insert { key: k, value: k }, 1),
                                Op::Remove(k) => (false, Request::Remove { key: k }, 1),
                            }
                        };
                        if window.len() == pipeline {
                            drain_one(&mut window);
                        }
                        let session = if to_reader {
                            reader.as_ref().expect("reader session")
                        } else {
                            &primary
                        };
                        let ticket = session.submit(&req).expect("pipelined submit");
                        window.push_back((Instant::now(), ticket, n_ops));
                    }
                    if !pending.is_empty() {
                        let n = pending.len();
                        let req = Request::Batch {
                            ops: std::mem::take(&mut pending),
                            guarded: false,
                        };
                        let ticket = primary.submit(&req).expect("final batch submit");
                        window.push_back((Instant::now(), ticket, n));
                    }
                    while !window.is_empty() {
                        drain_one(&mut window);
                    }
                    return ops_run;
                }
                while ops_run < per_thread {
                    let op = stream.next_op();
                    if batch > 1 && op.is_update() {
                        pending.push(match op {
                            Op::Insert(k) => BatchOp::Insert(k, k),
                            Op::Remove(k) => BatchOp::Remove(k),
                            Op::Contains(_) => unreachable!("updates only"),
                        });
                        if pending.len() == batch {
                            let t0 = Instant::now();
                            client.batch(&pending).expect("batch");
                            let ns = t0.elapsed().as_nanos() as u64;
                            // One round trip carried `batch` ops.
                            hist.record_n(ns / pending.len() as u64, pending.len() as u64);
                            pending.clear();
                        }
                        ops_run += 1;
                        continue;
                    }
                    let t0 = Instant::now();
                    match op {
                        Op::Contains(k) => {
                            reader.as_mut().unwrap_or(&mut client).get(k).expect("get");
                        }
                        Op::Insert(k) => {
                            client.insert(k, k).expect("insert");
                        }
                        Op::Remove(k) => {
                            client.remove(k).expect("remove");
                        }
                    }
                    hist.record(t0.elapsed().as_nanos() as u64);
                    ops_run += 1;
                }
                if !pending.is_empty() {
                    client.batch(&pending).expect("final batch");
                }
                ops_run
            }));
        }
        for h in handles {
            done_ops += h.join().expect("worker panicked");
        }
        stop.store(true, Ordering::Relaxed);
        for h in sync_handles {
            synced_nodes.push(h.join().expect("sync thread panicked"));
        }
        for h in pump_handles {
            pumped_nodes.push(h.join().expect("pump thread panicked"));
        }
    });

    let elapsed = start.elapsed();
    let latencies = latency_hist.snapshot();
    let (p50, p95, p99, max) = (
        latencies.value_at_percentile(50.0),
        latencies.value_at_percentile(95.0),
        latencies.value_at_percentile(99.0),
        latencies.max(),
    );
    let ops_per_sec = done_ops as f64 / elapsed.as_secs_f64();

    let final_stats = {
        let mut c = Client::connect(addr).expect("stats connect");
        c.stats().expect("stats")
    };

    println!(
        "loadgen: backend={backend_name} threads={threads} workers={workers} ops={done_ops} \
         read_frac={read_frac:.2} zipf(n={keys}, theta={theta}) batch={batch} \
         pipeline={pipeline} replicas={replicas}"
    );
    let table = Series {
        title: format!(
            "Server round-trip throughput/latency ({} ops/sec)",
            group_thousands(ops_per_sec as u64)
        ),
        columns: vec![
            "threads".into(),
            "ops".into(),
            "secs".into(),
            "kops_per_sec".into(),
            "p50_us".into(),
            "p95_us".into(),
            "p99_us".into(),
            "max_us".into(),
        ],
        rows: vec![vec![
            threads as f64,
            done_ops as f64,
            elapsed.as_secs_f64(),
            ops_per_sec / 1e3,
            p50 as f64 / 1e3,
            p95 as f64 / 1e3,
            p99 as f64 / 1e3,
            max as f64 / 1e3,
        ]],
    };
    print!("{}", table.render());
    println!(
        "engine: ops={} attempts={} cas_failures={} frozen_installs={} freeze_retries={} len={}",
        final_stats.ops,
        final_stats.attempts,
        final_stats.cas_failures,
        final_stats.frozen_installs,
        final_stats.freeze_retries,
        final_stats.len,
    );
    for (i, node) in synced_nodes.iter().enumerate() {
        let s = node.replica.stats();
        println!(
            "replica[{i}]: applied_epoch={} lag={} diff_pulls={} diff_bytes={} \
             full_syncs={} full_bytes={} ring_fallbacks={}",
            s.applied_epoch,
            s.lag(),
            s.diff_pulls,
            s.diff_bytes,
            s.full_syncs,
            s.full_bytes,
            s.ring_fallbacks,
        );
    }
    for (i, node) in pumped_nodes.iter().enumerate() {
        let role = if i < relays { "relay" } else { "push-replica" };
        let p = node.push_stats();
        let s = node.pull_stats();
        println!(
            "{role}[{i}]: applied_epoch={} pushes={} push_entries={} stale={} gaps={} \
             resubscribes={} repair_diff_pulls={} full_syncs={}",
            s.applied_epoch,
            p.pushes_applied,
            p.push_entries,
            p.stale_pushes,
            p.push_gaps,
            p.resubscribes,
            s.diff_pulls,
            s.full_syncs,
        );
    }

    if let Some((log, persister)) = &durable {
        let io = log.io_stats();
        let (oldest, head) = log.retained().unwrap_or((0, 0));
        println!(
            "durable log: head={head} retained={oldest}..={head} segments={} bytes={} \
             appends={} fsyncs={} bytes_written={} append_errors={}",
            log.segment_count(),
            log.total_bytes(),
            io.appends,
            io.fsyncs,
            io.bytes_written,
            persister.error_count(),
        );
        if let Some(e) = persister.take_error() {
            eprintln!("durable log: last append error: {e}");
        }
    }

    if show_metrics {
        // Scrape the primary the way an external collector would — over
        // the wire — and print the text exposition.
        let mut c = Client::connect(addr).expect("metrics connect");
        let rows = c.metrics().expect("metrics scrape");
        println!("--- metrics (primary) ---");
        print!("{}", render_text(&rows));
        for (i, node) in pumped_nodes.iter().enumerate() {
            let role = if i < relays { "relay" } else { "push-replica" };
            let rows = node.metrics().collect();
            println!("--- metrics ({role}[{i}] push path) ---");
            print!("{}", render_text(&rows));
        }
    }

    if trace_on {
        // Pull every node's flight recorder over the wire — the same
        // `TraceDump` frame an operator's tooling would use — stitch
        // the dumps, and render the worst fully-propagated trace.
        let mut dumps: Vec<(String, Vec<SpanRecord>)> = Vec::new();
        {
            let mut c = Client::connect(addr).expect("trace connect");
            dumps.push(c.trace_dump().expect("primary trace dump"));
        }
        for node_addr in &trace_addrs {
            let mut c = Client::connect(*node_addr).expect("trace connect");
            dumps.push(c.trace_dump().expect("node trace dump"));
        }
        for (node, spans) in &dumps {
            println!("trace: node {node} captured {} span(s)", spans.len());
        }
        // "Worst" = among the best-stitched traces (most nodes), the
        // one with the largest total recorded time.
        let best = trace_ids(&dumps)
            .into_iter()
            .map(|id| {
                let nodes = dumps
                    .iter()
                    .filter(|(_, s)| s.iter().any(|r| r.trace_id == id))
                    .count();
                let total: u64 = dumps
                    .iter()
                    .flat_map(|(_, s)| s)
                    .filter(|r| r.trace_id == id)
                    .map(|r| r.dur_ns)
                    .sum();
                (nodes, total, id)
            })
            .max_by_key(|&(nodes, total, _)| (nodes, total));
        match best {
            Some((nodes, _, id)) => {
                println!("--- worst trace (stitched across {nodes} node(s)) ---");
                print!("{}", render_trace(id, &dumps));
            }
            None => println!("trace: no sampled spans captured"),
        }
    }

    if let Some(path) = json {
        // Same JSON-lines schema as the criterion shim's BENCH_JSON hook,
        // so loadgen results aggregate into the same trend artifacts.
        // `/p{n}` appears only for pipelined runs so that the default
        // serial series keeps its historical trend ids.
        let pipe_seg = if pipeline > 1 {
            format!("/p{pipeline}")
        } else {
            String::new()
        };
        let prefix = format!("loadgen/{backend_name}/t{threads}/b{batch}/r{replicas}{pipe_seg}");
        let per_op_ns = elapsed.as_nanos() as f64 / done_ops.max(1) as f64;
        let lines = [
            format!(
                "{{\"id\":\"{prefix}/throughput\",\"median_ns\":{per_op_ns:.1},\
                 \"samples\":{done_ops},\"mode\":\"loadgen\"}}"
            ),
            format!(
                "{{\"id\":\"{prefix}/latency_p50\",\"median_ns\":{p50}.0,\
                 \"samples\":{done_ops},\"mode\":\"loadgen\"}}"
            ),
        ];
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                for line in &lines {
                    writeln!(f, "{line}")?;
                }
                Ok(())
            });
        match written {
            Ok(()) => println!("json: appended {} line(s) to {path}", lines.len()),
            Err(e) => eprintln!("loadgen: cannot append to {path}: {e}"),
        }
    }

    // Replica servers shut down when their handles drop.
    for node in synced_nodes {
        node.server.shutdown();
    }
    server.shutdown();
}

/// Maps a scrambled word into the workload key space `[0, keys)`.
fn key_in_space(word: u64, keys: u64) -> i64 {
    (word % keys.max(1)) as i64
}
