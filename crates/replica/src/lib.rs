//! # pathcopy-replica
//!
//! Snapshot-diff replication over the serving layer: a primary
//! `pathcopy-server` publishes a monotone **version feed** (a capped
//! ring of recent snapshots keyed by epoch —
//! [`pathcopy_server::VersionFeed`]), and [`Replica`] engines bootstrap
//! from a chunked full sync, then catch up by pulling **pruned
//! snapshot-to-snapshot diffs** between their applied epoch and the feed
//! head.
//!
//! This is the paper's central artifact turned into horizontal read
//! scale-out. Path-copied versions share every unchanged subtree, so:
//!
//! * retaining a ring of recent epochs on the primary costs O(changes),
//!   not `K` map copies;
//! * the catch-up diff is computed by pointer-equality pruning —
//!   sublinear in the map size for nearby epochs — and *only the change*
//!   crosses the wire (the replica's byte counters prove it:
//!   [`ReplicaStatsSnapshot::diff_bytes`] vs
//!   [`ReplicaStatsSnapshot::full_bytes`]);
//! * the replica applies each diff as **one atomic batch** through its
//!   local backend's `transact`, so replica readers only ever observe
//!   published primary versions — frozen epochs, never a torn apply.
//!
//! A replica exposes the same
//! [`ServeBackend`](pathcopy_server::ServeBackend) surface as the
//! primary ([`Replica::serve`]), so read traffic points at replicas
//! unchanged — `loadgen --replicas N` does exactly that.
//!
//! ```
//! use pathcopy_replica::{Replica, SyncOutcome};
//! use pathcopy_server::{backend, Client, ServerConfig};
//!
//! // A primary with some state.
//! let primary = pathcopy_server::spawn(
//!     backend::by_name("sharded_map_8").unwrap(),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//! let mut writer = Client::connect(primary.addr()).unwrap();
//! writer.insert(1, 10).unwrap();
//!
//! // Bootstrap: the first sync is a (chunked) full transfer.
//! let mut replica = Replica::connect(
//!     primary.addr(),
//!     backend::by_name("sharded_map_8").unwrap(),
//! )
//! .unwrap();
//! assert!(matches!(
//!     replica.sync_once().unwrap(),
//!     SyncOutcome::FullSync { .. }
//! ));
//! assert_eq!(replica.store().get(1), Some(10));
//!
//! // Catch-up: the writer publishes a new epoch; the replica pulls the
//! // pruned diff — O(changes), not O(map).
//! writer.insert(2, 20).unwrap();
//! writer.remove(1).unwrap();
//! writer.publish().unwrap();
//! let outcome = replica.sync_once().unwrap();
//! assert!(matches!(outcome, SyncOutcome::Diff { changes: 2, .. }));
//! assert_eq!(replica.store().get(1), None);
//! assert_eq!(replica.store().get(2), Some(20));
//! primary.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod push;
mod replica;

pub use push::{PushMetrics, PushOutcome, PushReplica, PushStats, RelayBackend};
pub use replica::{cluster, Replica, ReplicaNode, ReplicaStats, ReplicaStatsSnapshot, SyncOutcome};
