//! Push-based replication: the subscriber side and relay chaining.
//!
//! The pull engine ([`Replica`]) asks the primary what changed; the
//! push subsystem inverts the arrow. A [`PushReplica`] bootstraps
//! exactly like a pull replica, then registers for the primary's feed
//! ([`Session::subscribe`](pathcopy_server::Session::subscribe)): every
//! published epoch arrives as an unsolicited diff frame, and
//! [`PushReplica::pump`] applies it as one atomic batch. In the steady
//! state a follower costs the primary **one diff-sized frame per
//! epoch** and issues **zero** requests — `PullDiff` survives only as
//! the gap-repair path.
//!
//! **Relay chaining** is what makes fan-out scale: a push replica can
//! itself serve the feed. [`PushReplica::serve_relay`] spawns a full
//! `pathcopy-server` over the replica's store (via [`RelayBackend`])
//! and mirrors every applied epoch into that server's own feed under
//! its **original number**
//! ([`VersionFeed::publish_at`](pathcopy_server::VersionFeed::publish_at)).
//! Downstream subscribers — more relays, or leaves — cannot tell the
//! relay from the primary: same frames, same epoch sequence, same
//! catch-up semantics. A tree of depth `d` with fan-out `f` serves
//! `f^d` leaves while the primary's egress stays `f` frames per epoch,
//! independent of the leaf count — path copying keeps each relay's
//! mirrored ring cheap (retained epochs share unchanged subtrees), so
//! the relay tax is O(changes), not O(n).
//!
//! Epoch numbers are **end-to-end**: a write's watermark issued by the
//! primary ([`Response::WroteAt`](pathcopy_server::Response::WroteAt))
//! is meaningful at any depth, which is what lets a session token
//! ([`SessionToken`](pathcopy_server::SessionToken)) carry
//! read-your-writes through an arbitrary relay tree.
//!
//! Delivery discipline (the invariants [`PushReplica::pump`] keeps):
//!
//! * apply a push only when its `from` epoch equals the locally applied
//!   epoch — anything newer is a **gap** (the primary demoted us, or
//!   frames were dropped), repaired by one `sync_once` plus a
//!   resubscribe;
//! * ignore pushes at or below the applied epoch — after a catch-up the
//!   subscription can replay an epoch the pull already covered
//!   ([`PushOutcome::Stale`]), and applying it twice would corrupt the
//!   store;
//! * mirror into the relay feed **after** the store mutation, so a
//!   downstream `FullSync` pinning the mirrored epoch always sees a
//!   store at least that new.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pathcopy_concurrent::{diff_to_ops, BatchOp, BatchResult};
use pathcopy_core::StatsSnapshot;
use pathcopy_metrics::{HistogramSnapshot, LatencyHistogram, Stage};
use pathcopy_server::metrics::{summarize, MetricsSource};
use pathcopy_server::proto::StageSummary;
use pathcopy_server::{
    ClientError, Epoch, ServeBackend, ServeSnapshot, ServerConfig, ServerHandle, Subscription,
};
use pathcopy_trace::{Flight, TraceContext};

use crate::replica::{Replica, ReplicaStatsSnapshot};

/// A [`ServeBackend`] view over a push replica's shared store: the
/// backend a relay's serving endpoint runs on. Pure delegation — the
/// type exists to name the role (and to give relay-specific policy a
/// single seam): the pump thread is the only writer, the served
/// endpoint reads coherent snapshots of whatever epoch the pump last
/// applied.
pub struct RelayBackend {
    store: Arc<dyn ServeBackend>,
}

impl RelayBackend {
    /// Wraps the shared store a [`PushReplica`] maintains.
    pub fn new(store: Arc<dyn ServeBackend>) -> Self {
        RelayBackend { store }
    }
}

impl ServeBackend for RelayBackend {
    fn get(&self, key: i64) -> Option<i64> {
        self.store.get(key)
    }

    fn insert(&self, key: i64, value: i64) -> Option<i64> {
        self.store.insert(key, value)
    }

    fn remove(&self, key: i64) -> Option<i64> {
        self.store.remove(key)
    }

    fn cas(&self, key: i64, expected: Option<i64>, new: Option<i64>) -> bool {
        self.store.cas(key, expected, new)
    }

    fn transact(&self, ops: &[BatchOp<i64, i64>]) -> Vec<BatchResult<i64>> {
        self.store.transact(ops)
    }

    fn transact_guarded(
        &self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Vec<BatchResult<i64>>, Vec<u32>> {
        self.store.transact_guarded(ops)
    }

    fn atomic_batches(&self) -> bool {
        self.store.atomic_batches()
    }

    fn snapshot(&self) -> Arc<dyn ServeSnapshot> {
        self.store.snapshot()
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn stats(&self) -> StatsSnapshot {
        self.store.stats()
    }
}

/// What one [`PushReplica::pump`] step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// No push arrived within the timeout; the feed is quiet.
    Idle,
    /// A push at or below the applied epoch was ignored (a replay the
    /// preceding catch-up already covered).
    Stale {
        /// The ignored push's epoch.
        epoch: Epoch,
    },
    /// A pushed diff was applied atomically.
    Pushed {
        /// The epoch the store now equals.
        epoch: Epoch,
        /// Diff entries applied.
        changes: usize,
    },
    /// The push did not adjoin the applied epoch (a gap): repaired by
    /// one pull catch-up plus a fresh subscription.
    CaughtUp {
        /// The epoch the store now equals.
        to: Epoch,
    },
}

/// Monotone counters for the push path, complementing
/// [`ReplicaStatsSnapshot`]'s pull counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PushStats {
    /// Pushes applied directly ([`PushOutcome::Pushed`]).
    pub pushes_applied: u64,
    /// Diff entries applied across all pushes.
    pub push_entries: u64,
    /// Stale pushes ignored ([`PushOutcome::Stale`]).
    pub stale_pushes: u64,
    /// Gaps repaired by falling back to a pull
    /// ([`PushOutcome::CaughtUp`]).
    pub push_gaps: u64,
    /// Fresh subscriptions established after a gap repair.
    pub resubscribes: u64,
}

/// Latency histograms for the push path, shared so a relay's serving
/// endpoint can expose them over `Request::Metrics` while the pump
/// thread keeps recording.
///
/// * **push-apply** — nanoseconds from a push frame leaving the
///   subscription queue to the diff being applied and mirrored;
/// * **epoch lag** — `frame.epoch - applied` at each applied or
///   gap-revealing push, in epochs: steady-state delivery records `1`
///   per frame, anything larger is backlog the primary published while
///   this replica wasn't keeping up (the watermark already on the wire
///   makes this measurable end-to-end, at any relay depth).
#[derive(Debug, Default)]
pub struct PushMetrics {
    push_apply: LatencyHistogram,
    epoch_lag: LatencyHistogram,
}

impl PushMetrics {
    /// Snapshot of the push-apply latency histogram (nanoseconds).
    pub fn push_apply_snapshot(&self) -> HistogramSnapshot {
        self.push_apply.snapshot()
    }

    /// Snapshot of the epoch-lag histogram (epochs).
    pub fn epoch_lag_snapshot(&self) -> HistogramSnapshot {
        self.epoch_lag.snapshot()
    }
}

impl MetricsSource for PushMetrics {
    fn collect(&self) -> Vec<StageSummary> {
        vec![
            summarize(Stage::PushApply, 0, &self.push_apply.snapshot()),
            summarize(Stage::EpochLag, 0, &self.epoch_lag.snapshot()),
        ]
    }

    fn reset(&self) {
        self.push_apply.reset();
        self.epoch_lag.reset();
    }
}

/// A push-fed replica, optionally re-serving the feed as a relay; see
/// the module docs.
pub struct PushReplica {
    replica: Replica,
    sub: Subscription,
    relay: Option<ServerHandle>,
    stats: PushStats,
    metrics: Arc<PushMetrics>,
    /// This node's flight recorder: when set, a traced push frame's
    /// apply is recorded as a [`Stage::PushApply`] span under the
    /// upstream context, and the context (re-parented under that span)
    /// rides the relay's own push frames downstream — each hop of the
    /// tree adds its spans to the same trace.
    flight: Option<Arc<Flight>>,
}

impl PushReplica {
    /// Connects to the feed source at `addr` (the primary, or any
    /// relay), bootstraps `store` with one pull sync, and subscribes
    /// for pushes from the bootstrapped epoch onward. After this
    /// returns, the steady state is pure push: drive it with
    /// [`pump`](Self::pump).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from connecting, or any [`ClientError`] from
    /// the bootstrap sync or the subscribe round trip (wrapped as IO).
    pub fn connect<A: ToSocketAddrs>(addr: A, store: Box<dyn ServeBackend>) -> io::Result<Self> {
        let mut replica = Replica::connect(addr, store)?;
        replica.sync_once().map_err(io::Error::from)?;
        let applied = replica.applied_epoch();
        let (_info, sub) = replica
            .client()
            .session()
            .subscribe(applied)
            .map_err(io::Error::from)?;
        Ok(PushReplica {
            replica,
            sub,
            relay: None,
            stats: PushStats::default(),
            metrics: Arc::new(PushMetrics::default()),
            flight: None,
        })
    }

    /// Installs this node's trace flight recorder (see the `flight`
    /// field docs). Call **before** [`serve_relay`](Self::serve_relay)
    /// so the relay endpoint dumps the same recorder over
    /// `Request::TraceDump`.
    pub fn set_trace(&mut self, flight: Arc<Flight>) {
        self.flight = Some(flight);
    }

    /// The push path's latency histograms; hold the `Arc` to scrape
    /// them from another thread, or let [`serve_relay`](Self::serve_relay)
    /// register them on the relay endpoint automatically.
    pub fn metrics(&self) -> Arc<PushMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The wrapped pull engine (for its stats and store accessors).
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// The feed epoch the local store currently equals.
    pub fn applied_epoch(&self) -> Epoch {
        self.replica.applied_epoch()
    }

    /// The pull engine's counters — in the push steady state
    /// `diff_pulls` stays frozen, which is the cheap way to prove no
    /// request traffic reached upstream.
    pub fn pull_stats(&self) -> ReplicaStatsSnapshot {
        self.replica.stats()
    }

    /// The push path's counters.
    pub fn push_stats(&self) -> PushStats {
        self.stats
    }

    /// Spawns a serving endpoint over this replica's store and starts
    /// mirroring applied epochs into its feed, turning this replica
    /// into a **relay**: downstream consumers subscribe to (or pull
    /// from) the returned address exactly as they would the primary,
    /// under the primary's epoch numbers. The feed is seeded at the
    /// currently applied epoch so a subscriber arriving before the
    /// next push still finds a head to sync against.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the relay's listener.
    pub fn serve_relay(&mut self, mut config: ServerConfig) -> io::Result<SocketAddr> {
        // The relay endpoint shares this replica's flight recorder so a
        // `TraceDump` against the relay address returns the apply spans
        // the pump thread records.
        if config.trace.is_none() {
            config.trace = self.flight.clone();
        }
        let handle =
            pathcopy_server::spawn(Box::new(RelayBackend::new(self.replica.store())), config)?;
        handle.register_metrics_source(self.metrics());
        let applied = self.applied_epoch();
        if applied > 0 {
            handle.publish_at(applied);
        }
        let addr = handle.addr();
        self.relay = Some(handle);
        Ok(addr)
    }

    /// The relay endpoint's address, once [`serve_relay`](Self::serve_relay)
    /// has been called.
    pub fn relay_addr(&self) -> Option<SocketAddr> {
        self.relay.as_ref().map(|h| h.addr())
    }

    /// The relay endpoint's exact wire counters (egress/ingress), for
    /// fan-out accounting.
    pub fn relay_wire_bytes(&self) -> Option<pathcopy_core::ByteCountersSnapshot> {
        self.relay.as_ref().map(|h| h.wire_bytes())
    }

    /// Waits up to `timeout` for one push and processes it; the
    /// returned [`PushOutcome`] says which invariant path ran. Call in
    /// a loop — this is the replica's whole steady-state duty cycle.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] when the upstream connection is
    /// gone (reconnect with [`connect`](Self::connect)); any other
    /// [`ClientError`] from a gap repair's pull or resubscribe.
    pub fn pump(&mut self, timeout: Duration) -> Result<PushOutcome, ClientError> {
        let frame = match self.sub.recv_timeout(timeout)? {
            None => return Ok(PushOutcome::Idle),
            Some(frame) => frame,
        };
        let applied = self.applied_epoch();
        if frame.epoch <= applied {
            // A replay: the catch-up that preceded this subscription
            // already covered the epoch. Applying it again would
            // re-execute removals/overwrites against a newer store.
            self.stats.stale_pushes += 1;
            return Ok(PushOutcome::Stale { epoch: frame.epoch });
        }
        // How far ahead the wire says the feed is: 1 per frame in the
        // steady state, more when this replica fell behind. A traced
        // frame's lag sample competes to become the exemplar, so an
        // `epoch_lag` breach in a scrape names the trace that saw it.
        self.metrics.epoch_lag.record_tagged(
            frame.epoch - applied,
            0,
            frame.trace.map_or(0, |c| c.trace_id),
        );
        if frame.from == applied {
            let started = Instant::now();
            if !frame.entries.is_empty() {
                self.replica.store().transact(&diff_to_ops(&frame.entries));
            }
            self.replica.record_applied(frame.epoch);
            self.stats.pushes_applied += 1;
            self.stats.push_entries += frame.entries.len() as u64;
            // A traced frame gets its apply recorded as a span under
            // the upstream context, and the onward mirror re-parents
            // the context under that span — the next hop's spans nest
            // beneath this one.
            let onward = match (self.flight.as_ref(), frame.trace.as_ref()) {
                (Some(flight), Some(ctx)) => {
                    let span_id = flight.next_span_id();
                    Some((Arc::clone(flight), *ctx, span_id, ctx.child(span_id)))
                }
                _ => None,
            };
            self.mirror_traced(frame.epoch, onward.as_ref().map(|(_, _, _, child)| child));
            let finished = Instant::now();
            let ns = (finished - started).as_nanos().min(u64::MAX as u128) as u64;
            self.metrics
                .push_apply
                .record_tagged(ns, 0, frame.trace.map_or(0, |c| c.trace_id));
            if let Some((flight, ctx, span_id, _)) = onward {
                flight.span_with_id(
                    span_id,
                    &ctx,
                    Stage::PushApply,
                    0,
                    frame.epoch,
                    started,
                    finished,
                );
                flight.maybe_pin(&ctx, ns);
            }
            Ok(PushOutcome::Pushed {
                epoch: frame.epoch,
                changes: frame.entries.len(),
            })
        } else {
            // Gap: frames between `applied` and `frame.from` never
            // arrived (demotion, or subscription established after a
            // publish burst). Repair by pulling, then resubscribe so
            // the server knows our new position.
            self.stats.push_gaps += 1;
            self.catch_up()
        }
    }

    /// Anti-entropy fallback: one pull catch-up plus a fresh
    /// subscription, mirrored downstream. Push delivery repairs gaps
    /// only when a *later* frame arrives to reveal them — a lost push
    /// followed by silence lags forever. A production loop calls this
    /// when [`pump`](Self::pump) keeps returning [`PushOutcome::Idle`]
    /// while an external signal (watermarked read traffic, a lag
    /// probe) says the feed has moved. Returns the epoch the store now
    /// equals.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the pull or the resubscribe.
    pub fn sync_now(&mut self) -> Result<Epoch, ClientError> {
        self.catch_up()?;
        Ok(self.applied_epoch())
    }

    /// Fault injection: receives one push within `timeout` and
    /// **discards it unapplied**, returning its epoch. The next pump
    /// then sees a genuine delivery gap and exercises the
    /// [`PushOutcome::CaughtUp`] repair path — exactly the state a
    /// demoted or lossy subscriber is in. Test/chaos tooling only; a
    /// production loop has no reason to call this.
    pub fn drop_one_push(&mut self, timeout: Duration) -> Result<Option<Epoch>, ClientError> {
        Ok(self.sub.recv_timeout(timeout)?.map(|frame| frame.epoch))
    }

    /// Pull-repairs a gap and re-arms the subscription at the new
    /// position, mirroring the result downstream.
    fn catch_up(&mut self) -> Result<PushOutcome, ClientError> {
        self.replica.sync_once()?;
        let to = self.applied_epoch();
        let (_info, sub) = self.replica.client().session().subscribe(to)?;
        self.sub = sub;
        self.stats.resubscribes += 1;
        self.mirror(to);
        Ok(PushOutcome::CaughtUp { to })
    }

    /// Mirrors `epoch` into the relay feed, if this replica serves one.
    /// `publish_at` rejects anything at or below the relay feed's
    /// sequence on its own, so stale mirrors are naturally dropped.
    fn mirror(&self, epoch: Epoch) {
        self.mirror_traced(epoch, None);
    }

    /// [`mirror`](Self::mirror) carrying a trace context: the relay's
    /// own push fan-out stamps it onto the frames it sends downstream.
    fn mirror_traced(&self, epoch: Epoch, trace: Option<&TraceContext>) {
        if let Some(relay) = &self.relay {
            relay.publish_at_traced(epoch, trace);
        }
    }
}
