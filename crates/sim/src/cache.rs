//! Private per-process cache model: an LRU set of node identities.
//!
//! The paper's model gives each process "its own cache of size `M`";
//! loading a cached node costs 1 tick, an uncached node costs `R` ticks.
//! This module provides the cache itself; the cost accounting lives in
//! the simulators.
//!
//! Implementation: classic O(1) LRU — a slab-backed doubly linked list
//! ordered by recency plus a hash map from node id to slab slot.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    id: u64,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU set of `u64` node identities.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates an empty cache holding at most `capacity` ids.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity + 1),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached ids.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in ids.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// (hits, misses) recorded by [`access`](Self::access).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `true` if `id` is cached, without touching recency or stats.
    pub fn peek(&self, id: u64) -> bool {
        self.map.contains_key(&id)
    }

    /// Simulates a load of `id`: returns `true` on a hit. Either way `id`
    /// ends up most-recently-used (a miss fetches it, evicting the LRU
    /// entry if the cache is full).
    pub fn access(&mut self, id: u64) -> bool {
        if let Some(&slot) = self.map.get(&id) {
            self.hits += 1;
            self.detach(slot);
            self.attach_front(slot);
            true
        } else {
            self.misses += 1;
            self.insert_front(id);
            false
        }
    }

    /// Inserts `id` as most-recently-used without counting a hit or miss
    /// (used for nodes the process itself just created — they enter its
    /// cache by being written).
    pub fn install(&mut self, id: u64) {
        if let Some(&slot) = self.map.get(&id) {
            self.detach(slot);
            self.attach_front(slot);
        } else {
            self.insert_front(id);
        }
    }

    /// Drops everything (keeps capacity and counters).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn insert_front(&mut self, id: u64) {
        if self.map.len() == self.capacity {
            self.evict_lru();
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry {
                    id,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Entry {
                    id,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(id, slot);
        self.attach_front(slot);
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict on empty cache");
        let id = self.slab[victim].id;
        self.detach(victim);
        self.map.remove(&id);
        self.free.push(victim);
    }

    fn detach(&mut self, slot: usize) {
        let Entry { prev, next, .. } = self.slab[slot];
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// The least-recently-used id, if any (for tests).
    pub fn lru_id(&self) -> Option<u64> {
        (self.tail != NIL).then(|| self.slab[self.tail].id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1)); // miss
        assert!(c.access(1)); // hit
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.peek(1));
        assert!(!c.peek(2));
        assert!(c.peek(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn install_does_not_count_stats() {
        let mut c = LruCache::new(2);
        c.install(7);
        assert_eq!(c.stats(), (0, 0));
        assert!(c.access(7));
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn install_respects_capacity() {
        let mut c = LruCache::new(2);
        c.install(1);
        c.install(2);
        c.install(3);
        assert_eq!(c.len(), 2);
        assert!(!c.peek(1), "oldest install evicted");
    }

    #[test]
    fn lru_order_tracks_accesses() {
        let mut c = LruCache::new(3);
        c.access(1);
        c.access(2);
        c.access(3);
        assert_eq!(c.lru_id(), Some(1));
        c.access(1);
        assert_eq!(c.lru_id(), Some(2));
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        for i in 0..4 {
            c.access(i);
        }
        c.clear();
        assert!(c.is_empty());
        assert!(!c.peek(0));
        // Reusable afterwards.
        c.access(9);
        assert!(c.peek(9));
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut c = LruCache::new(64);
        for i in 0..10_000u64 {
            c.access(i % 512);
        }
        assert_eq!(c.len(), 64);
        let (hits, misses) = c.stats();
        assert_eq!(hits + misses, 10_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::new(0);
    }
}
