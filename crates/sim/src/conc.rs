//! Concurrent execution simulator (Appendix A.2).
//!
//! `P` synchronous processes repeatedly perform successful updates on
//! uniformly random keys against a shared path-copied tree:
//!
//! 1. an attempt starts by reading the current root (snapshotting the
//!    tree version) and traversing the root-to-leaf path, paying 1 tick
//!    per cached node and `R` per uncached node against the process's
//!    **private** LRU cache;
//! 2. when the traversal (and, optionally, serialized node allocation)
//!    finishes, the process CASes the root: it succeeds iff no other
//!    commit happened since its snapshot — ties in the same tick are
//!    broken round-robin (the paper's Fig. 3/4 schedule emerges from the
//!    processes running in lockstep);
//! 3. a failed CAS restarts the attempt on the new version — with the
//!    previous path still cached, so only the nodes renewed by winning
//!    commits (expected ≤ 2 per missed commit, Fig. 5) cost `R`.
//!
//! The optional `alloc_cost` models the Appendix-B observation that the
//! (Java) allocator serializes node creation: every attempt must acquire
//! a global allocator for `alloc_cost · path_len` ticks before its CAS.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::LruCache;
use crate::tree::ModelTree;

/// Parameters of a concurrent simulation.
#[derive(Debug, Clone, Copy)]
pub struct ConcConfig {
    /// Tree size (keys); power of two.
    pub n: u64,
    /// Number of processes.
    pub p: usize,
    /// Cost of an uncached load, in ticks.
    pub r: u64,
    /// Private cache capacity per process, in nodes. The model only needs
    /// "larger than log N"; the default is 4 path lengths.
    pub cache_per_process: usize,
    /// Committed operations to measure (after warmup).
    pub ops: u64,
    /// Warmup commits (not measured).
    pub warmup: u64,
    /// RNG seed.
    pub seed: u64,
    /// Ticks per allocated node, serialized through a global allocator;
    /// 0 disables the allocator model (the paper's base model).
    pub alloc_cost: u64,
}

impl ConcConfig {
    /// Baseline configuration for a tree of `n` keys and `p` processes.
    pub fn new(n: u64, p: usize, r: u64) -> Self {
        let levels = n.trailing_zeros() as usize;
        ConcConfig {
            n,
            p,
            r,
            cache_per_process: 4 * (levels + 1),
            ops: 20_000,
            warmup: 2_000,
            seed: 42,
            alloc_cost: 0,
        }
    }
}

/// Results of a concurrent simulation.
#[derive(Debug, Clone)]
pub struct ConcResult {
    /// Measured ticks (wall clock of the synchronous system).
    pub ticks: u64,
    /// Measured committed operations.
    pub ops: u64,
    /// Wall ticks per committed operation (lower is better).
    pub ticks_per_op: f64,
    /// Mean attempts per committed operation (the idealized model says P).
    pub attempts_per_op: f64,
    /// Mean uncached loads on **retry** attempts.
    pub retry_uncached_mean: f64,
    /// Mean commits missed between consecutive attempts of the same
    /// operation. The paper's lockstep model fixes this at exactly 1;
    /// event-driven jitter makes it drift above 1, and the lemma then
    /// bounds `retry_uncached_mean ≤ 2 · retry_commits_missed_mean`.
    pub retry_commits_missed_mean: f64,
    /// Histogram of uncached loads on retry attempts
    /// (`hist[k]` = retries with exactly `k` uncached loads).
    pub retry_uncached_hist: Vec<u64>,
    /// Mean cost in ticks of a first attempt (the model says ≈ R·log N).
    pub first_attempt_cost_mean: f64,
    /// Mean cost in ticks of a retry attempt (the model says
    /// ≈ 2R + log N − 2 per missed commit).
    pub retry_cost_mean: f64,
}

#[derive(Debug)]
struct Process {
    cache: LruCache,
    rng: StdRng,
    key: u64,
    snapshot_version: u64,
    ready_at: u64,
    attempts_this_op: u64,
    last_attempt_cost: u64,
}

#[derive(Debug, Default)]
struct Tally {
    measured_attempts: u64,
    retry_hist: Vec<u64>,
    retry_uncached_sum: u64,
    retry_missed_sum: u64,
    retry_count: u64,
    retry_cost_sum: u64,
    first_cost_sum: u64,
    first_count: u64,
}

/// Runs the Appendix A.2 concurrent simulation.
pub fn simulate_concurrent(cfg: ConcConfig) -> ConcResult {
    assert!(cfg.p >= 1, "need at least one process");
    let mut tree = ModelTree::new(cfg.n);
    let path_len = tree.path_len();

    let mut procs: Vec<Process> = (0..cfg.p)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x5851_f42d_4c95_7f2d ^ i as u64));
            let key = rng.gen_range(0..cfg.n);
            Process {
                cache: LruCache::new(cfg.cache_per_process),
                rng,
                key,
                snapshot_version: 0,
                ready_at: 0,
                attempts_this_op: 0,
                last_attempt_cost: 0,
            }
        })
        .collect();

    let mut ids = Vec::with_capacity(path_len);
    let mut fresh = Vec::with_capacity(path_len);
    let mut allocator_free_at = 0u64;
    let mut tally = Tally {
        retry_hist: vec![0u64; path_len + 1],
        ..Tally::default()
    };

    /// Computes one attempt's cost against the process's private cache,
    /// schedules its CAS, and (for measured retries) records the Fig-5
    /// statistics.
    #[allow(clippy::too_many_arguments)]
    fn start_attempt(
        proc: &mut Process,
        tree: &ModelTree,
        cfg: &ConcConfig,
        now: u64,
        ids: &mut Vec<u64>,
        allocator_free_at: &mut u64,
        tally: &mut Tally,
        measuring: bool,
        path_len: usize,
    ) {
        let prev_snapshot = proc.snapshot_version;
        proc.snapshot_version = tree.version();
        tree.path_ids(proc.key, ids);
        let mut cost = 0u64;
        let mut uncached = 0u64;
        for &id in ids.iter() {
            if proc.cache.access(id) {
                cost += 1;
            } else {
                cost += cfg.r;
                uncached += 1;
            }
        }
        let loads_done = now + cost;
        let cas_at = if cfg.alloc_cost > 0 {
            // Node creation goes through the serialized global allocator.
            let begin = loads_done.max(*allocator_free_at);
            let occupy = cfg.alloc_cost * path_len as u64;
            *allocator_free_at = begin + occupy;
            begin + occupy + 1
        } else {
            loads_done + 1 // +1: the CAS itself is one primitive op
        };
        let attempt_cost = cas_at - now;
        if measuring {
            if proc.attempts_this_op == 0 {
                tally.first_cost_sum += attempt_cost;
                tally.first_count += 1;
            } else {
                // This is a retry of the same operation: its uncached
                // loads are the nodes renewed by the commits it missed.
                let missed = tree.version() - prev_snapshot;
                tally.retry_cost_sum += attempt_cost;
                tally.retry_uncached_sum += uncached;
                tally.retry_missed_sum += missed;
                tally.retry_hist[(uncached as usize).min(path_len)] += 1;
                tally.retry_count += 1;
            }
        }
        proc.ready_at = cas_at;
        proc.attempts_this_op += 1;
        proc.last_attempt_cost = attempt_cost;
    }

    let measuring_at = |commits: u64, cfg: &ConcConfig| commits >= cfg.warmup;

    for proc in &mut procs {
        start_attempt(
            proc,
            &tree,
            &cfg,
            0,
            &mut ids,
            &mut allocator_free_at,
            &mut tally,
            false,
            path_len,
        );
    }

    let total_target = cfg.warmup + cfg.ops;
    let mut commits = 0u64;
    let mut measure_start_tick = 0u64;
    let mut next_winner = 0usize;
    let mut now;

    loop {
        // Advance to the earliest pending CAS.
        now = procs.iter().map(|p| p.ready_at).min().expect("p >= 1");
        // All processes attempting their CAS in this tick.
        let ready: Vec<usize> = (0..cfg.p).filter(|&i| procs[i].ready_at == now).collect();
        // Fresh snapshots can win; stale ones fail outright. Ties break
        // round-robin, which yields the paper's Fig-4 schedule when the
        // processes run in lockstep.
        let current = tree.version();
        let winner = (0..cfg.p)
            .map(|offset| (next_winner + offset) % cfg.p)
            .find(|idx| ready.contains(idx) && procs[*idx].snapshot_version == current);

        if let Some(w) = winner {
            next_winner = (w + 1) % cfg.p;
            if measuring_at(commits, &cfg) {
                tally.measured_attempts += procs[w].attempts_this_op;
            }
            let proc = &mut procs[w];
            tree.commit(proc.key, &mut fresh);
            for &id in &fresh {
                proc.cache.install(id); // it wrote these nodes
            }
            commits += 1;
            if commits == cfg.warmup {
                measure_start_tick = now + 1;
            }
            if commits == total_target {
                break;
            }
            // Start the next operation.
            proc.key = proc.rng.gen_range(0..cfg.n);
            proc.attempts_this_op = 0;
        }

        // Everyone ready in this tick — the winner included — starts its
        // next attempt (retry for losers, fresh operation for the winner).
        let measuring = measuring_at(commits, &cfg);
        for &i in &ready {
            start_attempt(
                &mut procs[i],
                &tree,
                &cfg,
                now + 1,
                &mut ids,
                &mut allocator_free_at,
                &mut tally,
                measuring,
                path_len,
            );
        }
    }

    let ticks = now.saturating_sub(measure_start_tick).max(1);
    ConcResult {
        ticks,
        ops: cfg.ops,
        ticks_per_op: ticks as f64 / cfg.ops as f64,
        attempts_per_op: tally.measured_attempts as f64 / cfg.ops.max(1) as f64,
        retry_uncached_mean: ratio(tally.retry_uncached_sum, tally.retry_count),
        retry_commits_missed_mean: ratio(tally.retry_missed_sum, tally.retry_count),
        retry_uncached_hist: tally.retry_hist,
        first_attempt_cost_mean: ratio(tally.first_cost_sum, tally.first_count),
        retry_cost_mean: ratio(tally.retry_cost_sum, tally.retry_count),
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;

    fn small(p: usize) -> ConcConfig {
        ConcConfig {
            ops: 3_000,
            warmup: 500,
            ..ConcConfig::new(1 << 12, p, 50)
        }
    }

    #[test]
    fn single_process_has_no_retries() {
        let res = simulate_concurrent(small(1));
        assert!((res.attempts_per_op - 1.0).abs() < 1e-9);
        assert_eq!(res.retry_uncached_hist.iter().sum::<u64>(), 0);
    }

    #[test]
    fn attempts_per_op_grow_with_p() {
        // Fig. 4's idealization says attempts/op = P exactly; the
        // event-driven system desynchronizes, but attempts must still
        // grow roughly linearly in P.
        let mut last = 0.0;
        for p in [2usize, 4, 8] {
            let a = simulate_concurrent(small(p)).attempts_per_op;
            assert!(a > last, "attempts/op must grow with P");
            assert!(
                a >= p as f64 / 3.0 && a <= p as f64 * 1.5,
                "P={p}: attempts/op = {a:.2} out of linear band"
            );
            last = a;
        }
    }

    #[test]
    fn retry_uncached_obeys_the_lemma_per_missed_commit() {
        // Appendix A: each missed commit renews at most 2 expected nodes
        // on the retried path.
        let res = simulate_concurrent(small(8));
        assert!(res.retry_commits_missed_mean >= 1.0);
        let per_commit = res.retry_uncached_mean / res.retry_commits_missed_mean;
        assert!(
            per_commit <= 2.2,
            "uncached per missed commit = {per_commit:.2} violates the lemma"
        );
        assert!(per_commit > 0.5, "suspiciously low: {per_commit:.2}");
        // Distribution is geometric-ish: one modified node strictly more
        // common than four.
        assert!(res.retry_uncached_hist[1] > res.retry_uncached_hist[4]);
    }

    #[test]
    fn retry_cost_matches_model_shape() {
        let cfg = small(8);
        let res = simulate_concurrent(cfg);
        let log_n = (cfg.n as f64).log2();
        let model_first = cfg.r as f64 * log_n;
        assert!(
            res.first_attempt_cost_mean > model_first * 0.5,
            "first attempt {:.1} far below model {model_first:.1}",
            res.first_attempt_cost_mean
        );
        // A retry is much cheaper than a first attempt: the cache effect.
        assert!(
            res.retry_cost_mean < res.first_attempt_cost_mean / 2.0,
            "retry {:.1} vs first {:.1}",
            res.retry_cost_mean,
            res.first_attempt_cost_mean
        );
    }

    #[test]
    fn speedup_emerges_under_contention() {
        // The headline result: wall time per op *drops* as P grows,
        // despite all updates being serialized.
        let t1 = simulate_concurrent(small(1)).ticks_per_op;
        let t4 = simulate_concurrent(small(4)).ticks_per_op;
        let t8 = simulate_concurrent(small(8)).ticks_per_op;
        assert!(t4 < t1, "P=4 ({t4:.0}) should beat P=1 ({t1:.0})");
        assert!(t8 < t4, "P=8 ({t8:.0}) should beat P=4 ({t4:.0})");
    }

    #[test]
    fn simulated_cost_tracks_formula() {
        let cfg = small(8);
        let res = simulate_concurrent(cfg);
        let formula = analytic::conc_cost_per_op(cfg.p as f64, cfg.n as f64, cfg.r as f64);
        let ratio = res.ticks_per_op / formula;
        assert!(
            (0.5..2.0).contains(&ratio),
            "simulated {:.1} vs formula {formula:.1} ticks/op (ratio {ratio:.2})",
            res.ticks_per_op
        );
    }

    #[test]
    fn allocator_contention_causes_decline() {
        // Appendix B: with a serialized allocator, large P throughput
        // degrades below moderate P throughput.
        let base = ConcConfig {
            ops: 2_000,
            warmup: 500,
            alloc_cost: 8,
            ..ConcConfig::new(1 << 12, 4, 50)
        };
        let t4 = simulate_concurrent(ConcConfig { p: 4, ..base }).ticks_per_op;
        let t32 = simulate_concurrent(ConcConfig { p: 32, ..base }).ticks_per_op;
        assert!(
            t32 > t4 * 1.2,
            "alloc-bound: P=32 ({t32:.0}) should be slower per op than P=4 ({t4:.0})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_concurrent(small(4));
        let b = simulate_concurrent(small(4));
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.retry_uncached_hist, b.retry_uncached_hist);
    }
}
