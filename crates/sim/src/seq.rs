//! Sequential execution simulator (Appendix A.1).
//!
//! One process executes `ops` successful updates on uniformly random
//! keys. Each update traverses the root-to-leaf path (1 tick per cache
//! hit, `R` ticks per miss under a private LRU cache of size `M`) and
//! then commits a path copy, whose fresh nodes enter the cache because
//! the process wrote them.
//!
//! The measured mean cost per operation should approach the closed form
//! `log M + R (log N − log M)` once the cache is warm.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::LruCache;
use crate::tree::ModelTree;

/// Which cache mechanism the sequential simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheModel {
    /// A real LRU of capacity `M`. Close to the formula but with a soft
    /// band of partially-cached levels around `log M` instead of the
    /// paper's sharp threshold.
    #[default]
    Lru,
    /// The paper's idealization, verbatim: "approximately upper `log M`
    /// levels of the tree are cached". A node hits iff its tree position
    /// is `< M` (exactly the top `log₂ M` levels for power-of-two `M`).
    IdealTopLevels,
}

/// Parameters of a sequential simulation.
#[derive(Debug, Clone, Copy)]
pub struct SeqConfig {
    /// Tree size (keys); power of two.
    pub n: u64,
    /// Private cache capacity in nodes.
    pub m: usize,
    /// Cost of an uncached load, in ticks.
    pub r: u64,
    /// Number of operations to run after warmup.
    pub ops: u64,
    /// Warmup operations (cache filling; not measured).
    pub warmup: u64,
    /// RNG seed.
    pub seed: u64,
    /// If `true`, every operation commits a path copy, renewing the node
    /// identities along its path (a *persistent* treap run sequentially).
    /// The paper's A.1 baseline is a plain mutable tree, i.e. `false`;
    /// the `true` mode quantifies how much the identity churn of path
    /// copying costs a single process — part of why `UC 1p` trails the
    /// sequential treap on the Batch workload.
    pub path_copy: bool,
    /// Cache mechanism (LRU or the paper's sharp-threshold idealization).
    pub cache_model: CacheModel,
}

impl Default for SeqConfig {
    fn default() -> Self {
        SeqConfig {
            n: 1 << 20,
            m: 1 << 15,
            r: 100,
            ops: 20_000,
            warmup: 20_000,
            seed: 42,
            path_copy: false,
            cache_model: CacheModel::Lru,
        }
    }
}

/// Results of a sequential simulation.
#[derive(Debug, Clone)]
pub struct SeqResult {
    /// Total measured ticks.
    pub ticks: u64,
    /// Measured operations.
    pub ops: u64,
    /// Mean ticks per operation.
    pub ticks_per_op: f64,
    /// Mean uncached loads per operation.
    pub misses_per_op: f64,
    /// Mean cache hits per operation.
    pub hits_per_op: f64,
    /// Per-level hit rate, root = level 0 (the Fig-2 picture).
    pub level_hit_rate: Vec<f64>,
}

/// Runs the Appendix A.1 sequential simulation.
pub fn simulate_sequential(cfg: SeqConfig) -> SeqResult {
    let mut tree = ModelTree::new(cfg.n);
    let mut cache = LruCache::new(cfg.m);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let path_len = tree.path_len();

    let mut ids = Vec::with_capacity(path_len);
    let mut fresh = Vec::with_capacity(path_len);

    let mut run = |tree: &mut ModelTree,
                   cache: &mut LruCache,
                   rng: &mut StdRng,
                   ops: u64,
                   measured: bool,
                   level_hits: &mut [u64],
                   level_total: &mut [u64]|
     -> (u64, u64, u64) {
        let mut ticks = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for _ in 0..ops {
            let key = rng.gen_range(0..tree.n());
            tree.path_ids(key, &mut ids);
            let leaf = tree.n() + key;
            for (level, &id) in ids.iter().enumerate() {
                let hit = match cfg.cache_model {
                    CacheModel::Lru => cache.access(id),
                    // Position of the path node at this level.
                    CacheModel::IdealTopLevels => {
                        (leaf >> (tree.levels() as usize - level)) < cfg.m as u64
                    }
                };
                if hit {
                    ticks += 1;
                    hits += 1;
                    if measured {
                        level_hits[level] += 1;
                    }
                } else {
                    ticks += cfg.r;
                    misses += 1;
                }
                if measured {
                    level_total[level] += 1;
                }
            }
            if cfg.path_copy {
                // Path copy: the process writes the fresh nodes, so they
                // are in its cache afterwards (and the loaded identities
                // just became garbage).
                tree.commit(key, &mut fresh);
                for &id in &fresh {
                    cache.install(id);
                }
            }
        }
        (ticks, hits, misses)
    };

    let mut level_hits = vec![0u64; path_len];
    let mut level_total = vec![0u64; path_len];

    // Warmup: fill the cache, discard counters.
    let _ = run(
        &mut tree,
        &mut cache,
        &mut rng,
        cfg.warmup,
        false,
        &mut level_hits,
        &mut level_total,
    );

    let (ticks, hits, misses) = run(
        &mut tree,
        &mut cache,
        &mut rng,
        cfg.ops,
        true,
        &mut level_hits,
        &mut level_total,
    );

    let level_hit_rate = level_hits
        .iter()
        .zip(&level_total)
        .map(|(&h, &t)| if t == 0 { 0.0 } else { h as f64 / t as f64 })
        .collect();

    SeqResult {
        ticks,
        ops: cfg.ops,
        ticks_per_op: ticks as f64 / cfg.ops as f64,
        misses_per_op: misses as f64 / cfg.ops as f64,
        hits_per_op: hits as f64 / cfg.ops as f64,
        level_hit_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::seq_cost_per_op;

    #[test]
    fn ideal_cache_matches_closed_form_exactly() {
        // With the paper's sharp-threshold cache, every operation costs
        // exactly log M cached loads + (path_len - log M) RAM loads.
        let cfg = SeqConfig {
            n: 1 << 14,
            m: 1 << 10,
            r: 50,
            ops: 5_000,
            warmup: 100,
            seed: 1,
            path_copy: false,
            cache_model: CacheModel::IdealTopLevels,
        };
        let res = simulate_sequential(cfg);
        let log_m = 10.0;
        let exact = log_m + cfg.r as f64 * (15.0 - log_m); // path_len = 15
        assert!(
            (res.ticks_per_op - exact).abs() < 1e-9,
            "ideal-cache cost {} != {}",
            res.ticks_per_op,
            exact
        );
        // And the closed form (which counts log N rather than log N + 1
        // path nodes) is within one RAM load of it.
        let formula = seq_cost_per_op(cfg.n as f64, cfg.m as f64, cfg.r as f64);
        assert!((res.ticks_per_op - formula).abs() <= cfg.r as f64 + 1e-9);
    }

    #[test]
    fn lru_cache_tracks_closed_form_loosely() {
        let cfg = SeqConfig {
            n: 1 << 14,
            m: 1 << 10,
            r: 50,
            ops: 5_000,
            warmup: 5_000,
            seed: 1,
            path_copy: false,
            cache_model: CacheModel::Lru,
        };
        let res = simulate_sequential(cfg);
        let formula = seq_cost_per_op(cfg.n as f64, cfg.m as f64, cfg.r as f64);
        let ratio = res.ticks_per_op / formula;
        // A real LRU has a soft band of partially-cached levels around
        // log M instead of the paper's sharp threshold, costing a couple
        // of extra misses per op.
        assert!(
            (0.7..1.9).contains(&ratio),
            "simulated {:.1} vs formula {:.1} (ratio {ratio:.2})",
            res.ticks_per_op,
            formula
        );
        let diff = (cfg.n as f64).log2() - (cfg.m as f64).log2();
        assert!(
            res.misses_per_op >= diff - 0.5,
            "too few misses to be honest"
        );
        assert!(
            res.misses_per_op <= diff + 4.0,
            "LRU band wider than expected"
        );
    }

    #[test]
    fn path_copy_churn_costs_extra_sequentially() {
        // A persistent treap run by one process keeps invalidating its own
        // cached upper levels: measurably slower than the static baseline.
        let base = SeqConfig {
            n: 1 << 14,
            m: 1 << 10,
            r: 50,
            ops: 4_000,
            warmup: 6_000,
            seed: 1,
            path_copy: false,
            cache_model: CacheModel::Lru,
        };
        let static_cost = simulate_sequential(base).ticks_per_op;
        let copy_cost = simulate_sequential(SeqConfig {
            path_copy: true,
            ..base
        })
        .ticks_per_op;
        assert!(
            copy_cost > static_cost * 1.2,
            "path copying should cost noticeably more: {copy_cost:.0} vs {static_cost:.0}"
        );
    }

    #[test]
    fn upper_levels_are_cached_lower_are_not() {
        // The Fig-2 picture: hit rate ~1 near the root, ~0 near leaves.
        let res = simulate_sequential(SeqConfig {
            n: 1 << 14,
            m: 1 << 8,
            r: 50,
            ops: 4_000,
            warmup: 8_000,
            seed: 2,
            path_copy: false,
            cache_model: CacheModel::Lru,
        });
        let top = res.level_hit_rate[0];
        let bottom = *res.level_hit_rate.last().unwrap();
        assert!(top > 0.95, "root hit rate {top} should be ~1");
        assert!(bottom < 0.2, "leaf hit rate {bottom} should be ~0");
        // Monotone-ish decline: first half mean > second half mean.
        let mid = res.level_hit_rate.len() / 2;
        let first: f64 = res.level_hit_rate[..mid].iter().sum::<f64>() / mid as f64;
        let second: f64 =
            res.level_hit_rate[mid..].iter().sum::<f64>() / (res.level_hit_rate.len() - mid) as f64;
        assert!(first > second);
    }

    #[test]
    fn bigger_cache_is_faster() {
        let base = SeqConfig {
            n: 1 << 14,
            r: 50,
            ops: 3_000,
            warmup: 6_000,
            seed: 3,
            ..SeqConfig::default()
        };
        let small = simulate_sequential(SeqConfig { m: 1 << 6, ..base });
        let large = simulate_sequential(SeqConfig { m: 1 << 12, ..base });
        assert!(large.ticks_per_op < small.ticks_per_op);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SeqConfig {
            n: 1 << 10,
            m: 64,
            r: 10,
            ops: 500,
            warmup: 500,
            seed: 99,
            path_copy: true,
            cache_model: CacheModel::Lru,
        };
        let a = simulate_sequential(cfg);
        let b = simulate_sequential(cfg);
        assert_eq!(a.ticks, b.ticks);
    }
}
