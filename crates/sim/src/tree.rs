//! The model tree: an external, perfectly balanced binary tree over `N`
//! keys, with path copying expressed as node-identity renewal.
//!
//! Appendix A analyses an external balanced BST where an update copies
//! every node on the root-to-leaf path. For cost purposes the only thing
//! that matters about a node is its *identity* (is this exact node in a
//! cache?), so the model tree stores one current identity per tree
//! position, and a committed update stamps fresh identities along its
//! path. Old identities are never reused — they are precisely the
//! "nodes created by another process" that a retrying process has not
//! cached.
//!
//! Positions use implicit heap numbering: root = 1, children of `p` are
//! `2p` and `2p + 1`. Leaves sit at positions `N .. 2N`; key `k` lives at
//! leaf `N + k`.

/// Perfectly balanced external tree over keys `0..n` with per-position
/// node identities.
#[derive(Debug, Clone)]
pub struct ModelTree {
    levels: u32,
    /// `id_of[p]` = current identity of the node at position `p`
    /// (1-based; index 0 unused).
    id_of: Vec<u64>,
    next_id: u64,
    commits: u64,
}

impl ModelTree {
    /// Creates a tree over `n` keys; `n` must be a power of two ≥ 2.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: u64) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        let levels = n.trailing_zeros();
        let node_count = 2 * n as usize;
        let mut id_of = vec![0u64; node_count];
        // Distinct initial identities.
        for (p, slot) in id_of.iter_mut().enumerate().skip(1) {
            *slot = p as u64;
        }
        ModelTree {
            levels,
            id_of,
            next_id: node_count as u64,
            commits: 0,
        }
    }

    /// Number of keys (leaves).
    pub fn n(&self) -> u64 {
        1u64 << self.levels
    }

    /// Number of levels below the root; the root-to-leaf path has
    /// `levels + 1` nodes.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Nodes on the root-to-leaf path, root first.
    pub fn path_len(&self) -> usize {
        self.levels as usize + 1
    }

    /// Number of commits so far — the "root version" a CAS validates.
    pub fn version(&self) -> u64 {
        self.commits
    }

    /// Positions on the path from the root to `key`'s leaf, root first.
    pub fn path_positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        debug_assert!(key < self.n());
        let leaf = self.n() + key;
        (0..=self.levels)
            .rev()
            .map(move |shift| (leaf >> shift) as usize)
    }

    /// Current identities on the path to `key`, root first. This is what
    /// a process "reads" when it traverses the current version.
    pub fn path_ids(&self, key: u64, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.path_positions(key).map(|p| self.id_of[p]));
    }

    /// Commits an update on `key`: stamps fresh identities along the path
    /// (the path copy) and bumps the version. Returns the fresh
    /// identities (root first) so the committing process can install them
    /// in its own cache — it wrote those nodes.
    pub fn commit(&mut self, key: u64, fresh: &mut Vec<u64>) {
        fresh.clear();
        let positions: Vec<usize> = self.path_positions(key).collect();
        for p in positions {
            self.next_id += 1;
            self.id_of[p] = self.next_id;
            fresh.push(self.next_id);
        }
        self.commits += 1;
    }

    /// How many positions the paths to `a` and `b` share (always ≥ 1: the
    /// root). Exposed for validating the geometric-overlap argument.
    pub fn shared_prefix(&self, a: u64, b: u64) -> usize {
        self.path_positions(a)
            .zip(self.path_positions(b))
            .take_while(|(x, y)| x == y)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_have_expected_length_and_root() {
        let t = ModelTree::new(16);
        assert_eq!(t.levels(), 4);
        assert_eq!(t.path_len(), 5);
        for key in 0..16 {
            let path: Vec<usize> = t.path_positions(key).collect();
            assert_eq!(path.len(), 5);
            assert_eq!(path[0], 1, "path must start at the root");
            assert_eq!(path[4], (16 + key) as usize, "path must end at the leaf");
            // Each step goes to a child.
            for w in path.windows(2) {
                assert!(w[1] == 2 * w[0] || w[1] == 2 * w[0] + 1);
            }
        }
    }

    #[test]
    fn commit_renews_exactly_the_path() {
        let mut t = ModelTree::new(8);
        let mut before_hit = Vec::new();
        t.path_ids(3, &mut before_hit);
        let mut before_other = Vec::new();
        t.path_ids(7, &mut before_other);

        let mut fresh = Vec::new();
        t.commit(3, &mut fresh);
        assert_eq!(fresh.len(), t.path_len());

        let mut after_hit = Vec::new();
        t.path_ids(3, &mut after_hit);
        assert_eq!(after_hit, fresh);
        assert!(before_hit.iter().all(|id| !after_hit.contains(id)));

        // The other path changed only on the shared prefix.
        let mut after_other = Vec::new();
        t.path_ids(7, &mut after_other);
        let shared = t.shared_prefix(3, 7);
        assert_eq!(&before_other[shared..], &after_other[shared..]);
        assert!(before_other[..shared]
            .iter()
            .zip(&after_other[..shared])
            .all(|(b, a)| b != a));
    }

    #[test]
    fn version_counts_commits() {
        let mut t = ModelTree::new(4);
        assert_eq!(t.version(), 0);
        let mut fresh = Vec::new();
        t.commit(0, &mut fresh);
        t.commit(1, &mut fresh);
        assert_eq!(t.version(), 2);
    }

    #[test]
    fn identities_are_never_reused() {
        let mut t = ModelTree::new(8);
        let mut seen = std::collections::HashSet::new();
        let mut fresh = Vec::new();
        let mut ids = Vec::new();
        t.path_ids(0, &mut ids);
        seen.extend(ids.iter().copied());
        for key in [0u64, 3, 5, 0, 7] {
            t.commit(key, &mut fresh);
            for id in &fresh {
                assert!(seen.insert(*id), "identity {id} reused");
            }
        }
    }

    #[test]
    fn shared_prefix_geometry() {
        let t = ModelTree::new(16);
        // Keys in opposite halves share only the root.
        assert_eq!(t.shared_prefix(0, 15), 1);
        // A key shares its whole path with itself.
        assert_eq!(t.shared_prefix(5, 5), t.path_len());
        // Adjacent keys under the same parent share all but the leaf.
        assert_eq!(t.shared_prefix(0, 1), t.path_len() - 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = ModelTree::new(12);
    }
}
