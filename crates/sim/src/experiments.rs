//! Parameter sweeps producing the paper's model figures as data series.
//!
//! Each function returns plain rows ready for printing or CSV export;
//! the `model_figures` binary in `pathcopy-bench` renders them.

use crate::analytic;
use crate::conc::{simulate_concurrent, ConcConfig};
use crate::seq::{simulate_sequential, SeqConfig};

/// One point of the Fig-2 series: cache hit rate by tree level.
#[derive(Debug, Clone, Copy)]
pub struct LevelHitRate {
    /// Tree level (0 = root).
    pub level: usize,
    /// Fraction of loads at this level served from cache.
    pub hit_rate: f64,
}

/// Fig. 2: per-level hit rates of the sequential execution — the "upper
/// `log M` levels are cached" picture.
pub fn fig2_level_hit_rates(n: u64, m: usize, r: u64, ops: u64, seed: u64) -> Vec<LevelHitRate> {
    let res = simulate_sequential(SeqConfig {
        n,
        m,
        r,
        ops,
        warmup: ops,
        seed,
        path_copy: false,
        cache_model: crate::seq::CacheModel::Lru,
    });
    res.level_hit_rate
        .iter()
        .enumerate()
        .map(|(level, &hit_rate)| LevelHitRate { level, hit_rate })
        .collect()
}

/// One point of the Fig-3/4 series.
#[derive(Debug, Clone, Copy)]
pub struct RetrySeriesPoint {
    /// Process count.
    pub p: usize,
    /// Measured attempts per committed operation.
    pub attempts_per_op: f64,
    /// The model's prediction (= P).
    pub model: f64,
}

/// Fig. 3/4: attempts per committed operation versus process count — the
/// round-robin schedule's "P − 1 failures per success".
pub fn fig34_retry_series(
    ps: &[usize],
    n: u64,
    r: u64,
    ops: u64,
    seed: u64,
) -> Vec<RetrySeriesPoint> {
    ps.iter()
        .map(|&p| {
            let res = simulate_concurrent(ConcConfig {
                ops,
                warmup: ops / 4,
                seed,
                ..ConcConfig::new(n, p, r)
            });
            RetrySeriesPoint {
                p,
                attempts_per_op: res.attempts_per_op,
                model: p as f64,
            }
        })
        .collect()
}

/// The Fig-5 data: distribution of uncached loads on retried paths.
#[derive(Debug, Clone)]
pub struct ModifiedOnPath {
    /// Measured mean uncached loads per retry.
    pub measured_mean: f64,
    /// The lemma's bound (Σ k/2^k ≤ 2 for the given height).
    pub model_mean: f64,
    /// `hist[k]` = fraction of retries with exactly `k` uncached loads.
    pub hist: Vec<f64>,
    /// Model pmf for `k = 1..levels`.
    pub model_pmf: Vec<f64>,
}

/// Fig. 5: how many nodes on a retried search path were modified by the
/// winning commit.
pub fn fig5_modified_on_path(p: usize, n: u64, r: u64, ops: u64, seed: u64) -> ModifiedOnPath {
    let res = simulate_concurrent(ConcConfig {
        ops,
        warmup: ops / 4,
        seed,
        ..ConcConfig::new(n, p, r)
    });
    let total: u64 = res.retry_uncached_hist.iter().sum();
    let hist = res
        .retry_uncached_hist
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            }
        })
        .collect();
    let levels = n.trailing_zeros();
    let model_pmf = (1..=levels)
        .map(|k| analytic::modified_on_path_pmf(k, levels))
        .collect();
    ModifiedOnPath {
        measured_mean: res.retry_uncached_mean,
        model_mean: analytic::expected_modified_on_path(levels),
        hist,
        model_pmf,
    }
}

/// One point of the model speedup curve (§3.1).
#[derive(Debug, Clone, Copy)]
pub struct SpeedupPoint {
    /// Process count.
    pub p: usize,
    /// Simulated speedup over the simulated sequential baseline.
    pub simulated: f64,
    /// Closed-form speedup from the paper's formula.
    pub analytic: f64,
}

/// §3.1 speedup curve: simulated and closed-form speedup vs `P`.
///
/// The sequential baseline runs with cache `m_seq` (the paper's
/// `M = O(N^{1−ε})`); concurrent processes use the small per-process
/// cache of the model.
pub fn speedup_curve(
    ps: &[usize],
    n: u64,
    m_seq: usize,
    r: u64,
    ops: u64,
    seed: u64,
) -> Vec<SpeedupPoint> {
    let seq = simulate_sequential(SeqConfig {
        n,
        m: m_seq,
        r,
        ops,
        warmup: ops,
        seed,
        path_copy: false,
        cache_model: crate::seq::CacheModel::Lru,
    });
    ps.iter()
        .map(|&p| {
            let conc = simulate_concurrent(ConcConfig {
                ops,
                warmup: ops / 4,
                seed,
                ..ConcConfig::new(n, p, r)
            });
            SpeedupPoint {
                p,
                simulated: seq.ticks_per_op / conc.ticks_per_op,
                analytic: analytic::model_speedup(p as f64, n as f64, m_seq as f64, r as f64),
            }
        })
        .collect()
}

/// One point of the allocator-bottleneck series (Appendix B).
#[derive(Debug, Clone, Copy)]
pub struct AllocPoint {
    /// Process count.
    pub p: usize,
    /// Speedup with the allocator model disabled.
    pub speedup_free: f64,
    /// Speedup with the serialized allocator enabled.
    pub speedup_alloc: f64,
}

/// Appendix B: the same speedup sweep with and without a serialized
/// allocator; the allocator run must decline at large `P`.
pub fn alloc_bottleneck_curve(
    ps: &[usize],
    n: u64,
    m_seq: usize,
    r: u64,
    alloc_cost: u64,
    ops: u64,
    seed: u64,
) -> Vec<AllocPoint> {
    let seq = simulate_sequential(SeqConfig {
        n,
        m: m_seq,
        r,
        ops,
        warmup: ops,
        seed,
        path_copy: false,
        cache_model: crate::seq::CacheModel::Lru,
    });
    ps.iter()
        .map(|&p| {
            let mk = |alloc: u64| ConcConfig {
                ops,
                warmup: ops / 4,
                seed,
                alloc_cost: alloc,
                ..ConcConfig::new(n, p, r)
            };
            let free = simulate_concurrent(mk(0));
            let alloc = simulate_concurrent(mk(alloc_cost));
            AllocPoint {
                p,
                speedup_free: seq.ticks_per_op / free.ticks_per_op,
                speedup_alloc: seq.ticks_per_op / alloc.ticks_per_op,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_series_covers_all_levels() {
        let series = fig2_level_hit_rates(1 << 10, 64, 20, 2_000, 1);
        assert_eq!(series.len(), 11); // levels + 1 path nodes
        assert!(series[0].hit_rate > series[10].hit_rate);
    }

    #[test]
    fn fig34_attempts_grow_with_p() {
        let series = fig34_retry_series(&[1, 4], 1 << 10, 20, 1_500, 2);
        assert!(series[0].attempts_per_op < series[1].attempts_per_op);
        assert!((series[0].model - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig5_mean_close_to_model() {
        let data = fig5_modified_on_path(8, 1 << 10, 20, 2_000, 3);
        assert!(data.measured_mean <= data.model_mean + 1.5);
        let mass: f64 = data.hist.iter().sum();
        assert!((mass - 1.0).abs() < 1e-6);
    }

    #[test]
    fn speedup_curve_is_increasing_and_near_formula() {
        // R large relative to log N and a seq cache well below N: the
        // regime where the paper's scaling shows.
        let pts = speedup_curve(&[1, 4, 8], 1 << 12, 1 << 6, 100, 2_000, 4);
        assert!(pts[1].simulated > pts[0].simulated);
        assert!(pts[2].simulated > 1.0, "model must show scaling");
        for pt in &pts[1..] {
            let ratio = pt.simulated / pt.analytic;
            assert!(
                (0.4..3.0).contains(&ratio),
                "P={}: simulated {:.2} vs analytic {:.2}",
                pt.p,
                pt.simulated,
                pt.analytic
            );
        }
    }

    #[test]
    fn alloc_curve_declines_only_with_allocator() {
        let pts = alloc_bottleneck_curve(&[4, 24], 1 << 10, 1 << 7, 20, 10, 1_500, 5);
        let (p4, p24) = (pts[0], pts[1]);
        // Allocator-free keeps improving (or at least holds).
        assert!(p24.speedup_free >= p4.speedup_free * 0.8);
        // Serialized allocator hurts large P disproportionately.
        assert!(p24.speedup_alloc < p24.speedup_free);
    }
}
