//! # pathcopy-sim
//!
//! Executable form of the paper's Appendix-A model: synchronous
//! processes, private per-process LRU caches, unit-cost cached loads and
//! cost-`R` RAM loads, over a perfectly balanced external tree whose
//! updates are path copies.
//!
//! The simulator exists because the *explanation* of the paper's
//! unexpected scaling is a cache argument, and that argument can be run:
//! [`conc::simulate_concurrent`] reproduces the retry schedule (Fig. 3/4),
//! the modified-nodes-on-path distribution (Fig. 5) and the speedup
//! formula of §3.1, while [`seq::simulate_sequential`] reproduces the
//! sequential cost baseline and the cached-levels picture (Fig. 2).
//! [`analytic`] holds the closed forms to compare against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analytic;
pub mod cache;
pub mod conc;
pub mod experiments;
pub mod seq;
pub mod tree;

pub use analytic::{
    asymptotic_speedup, conc_cost_per_op, expected_modified_on_path, model_speedup, seq_cost_per_op,
};
pub use cache::LruCache;
pub use conc::{simulate_concurrent, ConcConfig, ConcResult};
pub use experiments::{
    alloc_bottleneck_curve, fig2_level_hit_rates, fig34_retry_series, fig5_modified_on_path,
    speedup_curve,
};
pub use seq::{simulate_sequential, CacheModel, SeqConfig, SeqResult};
pub use tree::ModelTree;
