//! Closed-form cost and speedup formulas from the paper's Appendix A.
//!
//! All logarithms are base 2 and the tree is the balanced external tree
//! of [`crate::tree::ModelTree`].

/// Expected per-operation cost of the **sequential** execution (A.1):
/// `log M + R · (log N − log M)` — the top `log M` levels are cached
/// (1 tick each), the remaining `log N − log M` levels are RAM loads
/// (`R` ticks each).
pub fn seq_cost_per_op(n: f64, m: f64, r: f64) -> f64 {
    assert!(m <= n, "cache cannot usefully exceed the tree");
    let log_n = n.log2();
    let log_m = m.log2();
    log_m + r * (log_n - log_m)
}

/// Expected wall-clock per completed operation in the **concurrent**
/// execution with `p` processes (A.2): one first attempt at `R · log N`
/// plus `p − 1` retries at `2R + log N − 2` each, divided by `p` because
/// `p` processes make progress in parallel.
pub fn conc_cost_per_op(p: f64, n: f64, r: f64) -> f64 {
    assert!(p >= 1.0);
    let log_n = n.log2();
    (r * log_n + (p - 1.0) * (2.0 * r + log_n - 2.0)) / p
}

/// The paper's speedup formula:
///
/// ```text
///              P · (log M + R·(log N − log M))
/// speedup = ─────────────────────────────────────
///           R·log N + (P − 1)·(2R + log N − 2)
/// ```
pub fn model_speedup(p: f64, n: f64, m: f64, r: f64) -> f64 {
    seq_cost_per_op(n, m, r) / conc_cost_per_op(p, n, r)
}

/// Limit of [`model_speedup`] as `P → ∞`: the retry cost dominates and
/// the speedup tends to `(log M + R(log N − log M)) / (2R + log N − 2)`.
pub fn asymptotic_speedup(n: f64, m: f64, r: f64) -> f64 {
    seq_cost_per_op(n, m, r) / (2.0 * r + n.log2() - 2.0)
}

/// Expected number of modified nodes on a retried search path (the Fig-5
/// lemma): `Σ_{k=1}^{levels} k / 2^k`, which is `< 2` and `→ 2` as the
/// tree grows.
pub fn expected_modified_on_path(levels: u32) -> f64 {
    (1..=levels).map(|k| k as f64 / 2f64.powi(k as i32)).sum()
}

/// Probability that exactly `k` nodes on the retried path were modified
/// (geometric: the winner's key diverges from ours after a shared prefix).
pub fn modified_on_path_pmf(k: u32, levels: u32) -> f64 {
    assert!(k >= 1 && k <= levels);
    if k == levels {
        // Last level: both remaining outcomes (diverge at the leaf or be
        // the same key) renew `levels` nodes... in the paper's idealized
        // geometric model the tail mass collapses onto k = levels.
        2f64.powi(-(levels as i32 - 1))
    } else {
        2f64.powi(-(k as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn seq_cost_matches_hand_computation() {
        // N = 2^20, M = 2^15, R = 100: 15 + 100 * 5 = 515.
        assert!((seq_cost_per_op(2f64.powi(20), 2f64.powi(15), 100.0) - 515.0).abs() < EPS);
    }

    #[test]
    fn conc_cost_single_process_is_first_attempt() {
        // P = 1: no retries; cost = R log N.
        let n = 2f64.powi(20);
        assert!((conc_cost_per_op(1.0, n, 50.0) - 50.0 * 20.0).abs() < EPS);
    }

    #[test]
    fn speedup_grows_with_p_then_saturates() {
        let n = 2f64.powi(20);
        let m = 2f64.powi(15);
        let r = 100.0;
        let s4 = model_speedup(4.0, n, m, r);
        let s16 = model_speedup(16.0, n, m, r);
        let s64 = model_speedup(64.0, n, m, r);
        assert!(s16 > s4);
        assert!(s64 > s16);
        assert!(s64 > 1.0, "model predicts >1 speedup at P=64, got {s64}");
        let cap = asymptotic_speedup(n, m, r);
        assert!(s64 < cap);
        assert!(model_speedup(100_000.0, n, m, r) > 0.99 * cap);
    }

    #[test]
    fn speedup_is_omega_log_n_with_r_log_n() {
        // With R = log N and M = N^(1-eps), speedup at large P should grow
        // like Theta(log N): check it roughly doubles from N=2^12 to 2^24.
        let s = |bits: i32| {
            let n = 2f64.powi(bits);
            let m = 2f64.powi((bits as f64 * 0.75) as i32);
            let r = bits as f64; // R = log N
            model_speedup(1e6, n, m, r)
        };
        let s12 = s(12);
        let s24 = s(24);
        assert!(
            s24 / s12 > 1.5,
            "speedup should scale with log N: {s12} -> {s24}"
        );
    }

    #[test]
    fn expected_modified_below_two_and_increasing() {
        let e4 = expected_modified_on_path(4);
        let e20 = expected_modified_on_path(20);
        assert!(e4 < e20);
        assert!(e20 < 2.0);
        assert!(e20 > 1.99, "should approach 2: {e20}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let levels = 16;
        let total: f64 = (1..=levels).map(|k| modified_on_path_pmf(k, levels)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
    }

    #[test]
    #[should_panic(expected = "cache cannot usefully exceed")]
    fn oversized_cache_rejected() {
        let _ = seq_cost_per_op(1024.0, 2048.0, 10.0);
    }
}
