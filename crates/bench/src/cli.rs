//! Minimal `--key value` / `--flag` argument parsing for the benchmark
//! binaries (no external CLI dependency).

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed command-line arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses from an iterator of raw arguments (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // `--key=value`, `--key value`, or bare `--flag`.
                if let Some((k, v)) = name.split_once('=') {
                    values.insert(k.to_string(), v.to_string());
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    let v = iter.next().expect("peeked");
                    values.insert(name.to_string(), v);
                } else {
                    flags.push(name.to_string());
                }
            } else {
                flags.push(arg);
            }
        }
        Args { values, flags }
    }

    /// Parses from the process environment.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Raw value for `--key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Parsed value for `--key`, falling back to `default`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message if the value does not parse.
    pub fn get_or<T: FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|e| panic!("--{key} {raw}: {e}")),
        }
    }

    /// `true` if `--name` appeared as a bare flag.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// All bare flags/positional arguments, in order.
    pub fn flags(&self) -> &[String] {
        &self.flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn key_value_styles() {
        let a = parse("--millis 500 --trials=15 --verbose");
        assert_eq!(a.get("millis"), Some("500"));
        assert_eq!(a.get_or("trials", 0usize), 15);
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get_or("absent", 7u32), 7);
    }

    #[test]
    fn flag_before_value_pair() {
        let a = parse("--all --machine xeon5220");
        assert!(a.has_flag("all"));
        assert_eq!(a.get("machine"), Some("xeon5220"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // `-5` does not start with `--`, so it binds to the key.
        let a = parse("--min -5");
        assert_eq!(a.get_or("min", 0i64), -5);
    }

    #[test]
    #[should_panic(expected = "--trials")]
    fn bad_value_panics_with_key_name() {
        let a = parse("--trials abc");
        let _ = a.get_or("trials", 0usize);
    }
}
