//! Regenerates the paper's analysis figures from the Appendix-A model
//! simulator (and Fig. 1 from the real persistent treap).
//!
//! ```text
//! model_figures [--fig 1|2|34|5|speedup|alloc|all] [--n 1048576] [--r 100]
//!               [--m 32768] [--ops 20000] [--seed 42] [--csv]
//! ```
//!
//! * `--fig 1`      — §3 worked example: node sharing and serialized
//!   uncached loads for the insert(5)/insert(75) scenario.
//! * `--fig 2`      — per-level cache hit rates (upper levels cached).
//! * `--fig 34`     — attempts per operation vs P (round-robin schedule).
//! * `--fig 5`      — modified nodes on the retried path (≤ 2 expected).
//! * `--fig speedup`— §3.1 speedup curve: simulated vs closed form.
//! * `--fig alloc`  — Appendix-B allocator-bottleneck decline.

use pathcopy_bench::cli::Args;
use pathcopy_bench::table::Series;
use pathcopy_sim::{
    alloc_bottleneck_curve, fig2_level_hit_rates, fig34_retry_series, fig5_modified_on_path,
    speedup_curve,
};
use pathcopy_trees::{sharing, TreapMap};

fn main() {
    let args = Args::from_env();
    let fig = args.get("fig").unwrap_or("all").to_string();
    let n: u64 = args.get_or("n", 1 << 20);
    let r: u64 = args.get_or("r", 100);
    let m: usize = args.get_or("m", 1 << 15);
    let ops: u64 = args.get_or("ops", 20_000);
    let seed: u64 = args.get_or("seed", 42);
    let csv = args.has_flag("csv");

    assert!(n.is_power_of_two(), "--n must be a power of two");
    let all = fig == "all";

    let emit = |s: &Series| {
        if csv {
            print!("{}", s.to_csv());
        } else {
            println!("{}", s.render());
        }
    };

    if all || fig == "1" {
        fig1_sharing_example();
    }

    if all || fig == "2" {
        let series = fig2_level_hit_rates(n, m, r, ops, seed);
        emit(&Series {
            title: format!(
                "Fig 2 — per-level cache hit rate (sequential, N=2^{}, M=2^{}):\n\
                 upper ~log M levels cached, lower levels in RAM",
                n.trailing_zeros(),
                (m as u64).trailing_zeros()
            ),
            columns: vec!["level".into(), "hit_rate".into()],
            rows: series
                .iter()
                .map(|pt| vec![pt.level as f64, pt.hit_rate])
                .collect(),
        });
    }

    if all || fig == "34" {
        let ps = [1, 2, 4, 8, 16, 32];
        let series = fig34_retry_series(&ps, n.min(1 << 14), r, ops.min(8_000), seed);
        emit(&Series {
            title: "Fig 3/4 — attempts per committed operation vs P \
                    (model: nearly every success preceded by P-1 failures)"
                .into(),
            columns: vec!["P".into(), "attempts_per_op".into(), "model(P)".into()],
            rows: series
                .iter()
                .map(|pt| vec![pt.p as f64, pt.attempts_per_op, pt.model])
                .collect(),
        });
    }

    if all || fig == "5" {
        let data = fig5_modified_on_path(8, n.min(1 << 14), r, ops.min(8_000), seed);
        let mut rows: Vec<Vec<f64>> = data
            .hist
            .iter()
            .enumerate()
            .skip(1)
            .take(10)
            .map(|(k, &frac)| {
                let model = data.model_pmf.get(k - 1).copied().unwrap_or(0.0);
                vec![k as f64, frac, model]
            })
            .collect();
        rows.push(vec![f64::NAN, data.measured_mean, data.model_mean]);
        emit(&Series {
            title: format!(
                "Fig 5 — modified nodes on the retried path (last row: means; \
                 measured {:.3} vs model bound {:.3})",
                data.measured_mean, data.model_mean
            ),
            columns: vec!["k".into(), "measured_frac".into(), "model_pmf".into()],
            rows,
        });
    }

    if all || fig == "speedup" {
        let ps = [1, 2, 4, 8, 10, 16, 17, 24, 32, 48, 63];
        let series = speedup_curve(&ps, n.min(1 << 16), m.min(1 << 12), r, ops.min(8_000), seed);
        emit(&Series {
            title: "S 3.1 — speedup vs P: simulated private-cache model vs closed form".into(),
            columns: vec!["P".into(), "simulated".into(), "analytic".into()],
            rows: series
                .iter()
                .map(|pt| vec![pt.p as f64, pt.simulated, pt.analytic])
                .collect(),
        });
    }

    if all || fig == "alloc" {
        let ps = [1, 4, 8, 16, 32, 63];
        let series = alloc_bottleneck_curve(
            &ps,
            n.min(1 << 14),
            m.min(1 << 10),
            r,
            6,
            ops.min(6_000),
            seed,
        );
        emit(&Series {
            title: "Appendix B — allocator bottleneck: speedup with free vs serialized allocation \
                    (the paper's decline at large P)"
                .into(),
            columns: vec![
                "P".into(),
                "speedup_free_alloc".into(),
                "speedup_serialized_alloc".into(),
            ],
            rows: series
                .iter()
                .map(|pt| vec![pt.p as f64, pt.speedup_free, pt.speedup_alloc])
                .collect(),
        });
    }
}

/// Fig. 1 + the §3 worked example, on the real persistent treap: build the
/// seven-node tree {10,20,30,40,50,60,70}, insert 5 and 75, and count
/// shared vs copied nodes and cached vs uncached loads.
fn fig1_sharing_example() {
    // Priorities forced so the tree is exactly the paper's:
    //              40
    //          30      50
    //        20           60
    //      10                70
    let keys_with_priorities: &[(i64, u64)] = &[
        (40, 700),
        (30, 600),
        (50, 600),
        (20, 500),
        (60, 500),
        (10, 400),
        (70, 400),
    ];
    let mut v0: TreapMap<i64, ()> = TreapMap::new();
    for &(k, prio) in keys_with_priorities {
        v0 = v0.insert_with_priority(k, (), prio).0;
    }
    v0.check_invariants();

    // Sequential: insert 5 (path 40,30,20,10 -> 4 uncached loads), then
    // insert 75 (path 40,50,60,70; 40 already cached -> 3 uncached).
    let path5 = v0.path_len(&5);
    let (v1, _) = v0.insert_with_priority(5, (), 300);
    let path75 = v1.path_len(&75);
    let seq_uncached = path5 + (path75 - 1); // node 40 cached after insert(5)

    // Concurrent: P inserts 5 (4 loads), Q inserts 75 (4 loads) in
    // parallel; Q retries on P's version and pays only the renewed nodes.
    let (vp, _) = v0.insert_with_priority(5, (), 300);
    let (vq_retry_base, _) = vp.insert_with_priority(75, (), 300);
    let q_retry_uncached = sharing::uncached_on_retry(&v0, &vp, &75);
    let conc_serialized = path5.max(path75) + q_retry_uncached;

    let stats = sharing::sharing_stats(&v0, &vp);
    println!(
        "Fig 1 - path copying shares nodes between versions (paper's S3 example)\n\
         ------------------------------------------------------------------\n\
         tree {{10..70}}, insert(5): old version {} nodes, new version {} nodes\n\
         shared {}, copied (fresh) {}, retired {}\n",
        stats.old_nodes, stats.new_nodes, stats.shared, stats.fresh, stats.retired
    );
    println!(
        "S3 worked example - serialized uncached loads\n\
         ---------------------------------------------\n\
         sequential (insert 5 then 75): {seq_uncached} uncached loads (paper: 7)\n\
         concurrent (P wins, Q retries): {} + {q_retry_uncached} = {conc_serialized} serialized \
         uncached loads (paper: 4 + 1 = 5)\n\
         Q's retry pays only the nodes P renewed on the shared prefix: {q_retry_uncached}\n",
        path5.max(path75)
    );
    vq_retry_base.check_invariants();
}
