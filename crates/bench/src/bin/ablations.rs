//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! ```text
//! ablations [--which noop-skip|backoff|structures|locks|alloc-rate|all]
//!           [--millis 250] [--trials 3] [--prefill 200000] [--threads 2]
//!           [--seed 42]
//! ```
//!
//! * `noop-skip`  — Random workload with and without the "skip the CAS
//!   when the operation changes nothing" optimization (§4.2's reason the
//!   Random workload scales better).
//! * `backoff`    — Batch workload under different retry backoff
//!   policies (the paper retries immediately).
//! * `structures` — the same UC over treap vs external BST.
//! * `locks`      — lock-free UC vs global-mutex vs RwLock baselines.
//! * `alloc-rate` — allocations per operation, successful and failed
//!   attempts included (the Appendix-B allocator-pressure story).

use std::num::NonZeroU32;
use std::time::Duration;

use pathcopy_bench::alloc_counter;
use pathcopy_bench::cli::Args;
use pathcopy_bench::harness::{run_paper_table, StructureKind, TableConfig};
use pathcopy_bench::measure::run_concurrent;
use pathcopy_bench::sets::{prefill_treap, ConcurrentSet};
use pathcopy_concurrent::TreapSet;
use pathcopy_core::{BackoffPolicy, PathCopyUc, Update};
use pathcopy_workloads::{BatchWorkload, RandomWorkload};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn main() {
    let args = Args::from_env();
    let which = args.get("which").unwrap_or("all").to_string();
    let millis: u64 = args.get_or("millis", 250);
    let trials: usize = args.get_or("trials", 3);
    let prefill: usize = args.get_or("prefill", 200_000);
    let threads: usize = args.get_or("threads", 2);
    let seed: u64 = args.get_or("seed", 42);
    let all = which == "all";

    let base = TableConfig {
        title: String::new(),
        process_counts: vec![1, threads],
        prefill_size: prefill,
        keys_per_process: 50_000,
        key_range: prefill as i64,
        trial: Duration::from_millis(millis),
        trials,
        warmup_trials: 1,
        seed,
        structure: StructureKind::Treap,
        backoff: BackoffPolicy::None,
    };

    if all || which == "noop-skip" {
        ablate_noop_skip(&base, threads);
    }
    if all || which == "backoff" {
        ablate_backoff(&base);
    }
    if all || which == "structures" {
        ablate_structures(&base);
    }
    if all || which == "locks" {
        ablate_locks(&base);
    }
    if all || which == "alloc-rate" {
        ablate_alloc_rate(&base, threads);
    }
}

/// §4.2: the Random workload's no-op updates (insert of a present key,
/// remove of an absent one) complete without a CAS. Compare against a
/// variant that CASes an identical version anyway.
fn ablate_noop_skip(cfg: &TableConfig, threads: usize) {
    println!("== ablation: no-op CAS skip (Random workload, {threads} threads) ==");
    let workload = RandomWorkload::generate(threads, cfg.prefill_size, cfg.key_range, cfg.seed);
    let prefill = prefill_treap(&workload.prefill);

    // Skipping variant: the shipped TreapSet.
    let skipping = pathcopy_bench::measure::trials(cfg.trials, |_| {
        let set = TreapSet::new();
        set.reset_to(prefill.clone());
        let started = std::time::Instant::now();
        let ops = run_concurrent(&set, workload.streams(), cfg.trial);
        (ops, started.elapsed())
    });

    // Always-CAS variant: wraps the raw UC and re-installs the unchanged
    // version on no-ops (what a naive UC port would do).
    struct AlwaysCasSet {
        uc: PathCopyUc<pathcopy_trees::treap::TreapSet<i64>>,
    }
    impl ConcurrentSet<i64> for AlwaysCasSet {
        fn insert(&self, key: i64) -> bool {
            self.uc.update(|s| match s.insert(key) {
                Some(next) => Update::Replace(next, true),
                None => Update::Replace(s.clone(), false), // pointless CAS
            })
        }
        fn remove(&self, key: &i64) -> bool {
            self.uc.update(|s| match s.remove(key) {
                Some(next) => Update::Replace(next, true),
                None => Update::Replace(s.clone(), false),
            })
        }
        fn contains(&self, key: &i64) -> bool {
            self.uc.read(|s| s.contains(key))
        }
        fn len(&self) -> usize {
            self.uc.read(|s| s.len())
        }
    }
    let always = pathcopy_bench::measure::trials(cfg.trials, |_| {
        let set = AlwaysCasSet {
            uc: PathCopyUc::new(prefill.clone()),
        };
        let started = std::time::Instant::now();
        let ops = run_concurrent(&set, workload.streams(), cfg.trial);
        (ops, started.elapsed())
    });

    println!(
        "  skip no-op CAS : {:>12.0} ops/s (±{:.1}%)",
        skipping.mean,
        100.0 * skipping.rel_std_dev()
    );
    println!(
        "  always CAS     : {:>12.0} ops/s (±{:.1}%)",
        always.mean,
        100.0 * always.rel_std_dev()
    );
    println!(
        "  skip/always    : {:>12.2}x\n",
        skipping.mean / always.mean
    );
}

/// Retry backoff: the paper retries immediately; spinning trades failed
/// CASes for idle time.
fn ablate_backoff(cfg: &TableConfig) {
    println!("== ablation: retry backoff (Batch workload) ==");
    let policies: [(&str, BackoffPolicy); 4] = [
        ("none (paper)", BackoffPolicy::None),
        ("exponential", BackoffPolicy::exponential()),
        (
            "fixed 64 spins",
            BackoffPolicy::FixedSpin {
                spins: NonZeroU32::new(64).unwrap(),
            },
        ),
        ("yield", BackoffPolicy::Yield),
    ];
    for (label, backoff) in policies {
        let cfg = TableConfig {
            backoff,
            title: String::new(),
            ..cfg.clone()
        };
        let row = pathcopy_bench::harness::run_batch_row(&cfg);
        let cols: Vec<String> = row
            .speedups
            .iter()
            .map(|(p, s)| format!("{p}p={s:.2}x"))
            .collect();
        println!("  {label:<15}: {}", cols.join("  "));
    }
    println!();
}

/// The same UC over different persistent structures.
fn ablate_structures(cfg: &TableConfig) {
    println!("== ablation: structure under the UC ==");
    for (label, structure) in [
        ("treap", StructureKind::Treap),
        ("external BST", StructureKind::ExternalBst),
    ] {
        let cfg = TableConfig {
            structure,
            title: format!("UC over {label}"),
            ..cfg.clone()
        };
        let table = run_paper_table(&cfg);
        print!("{}", table.render());
    }
    println!();
}

/// Lock-free UC vs the intro's lock-based UCs.
fn ablate_locks(cfg: &TableConfig) {
    println!("== ablation: synchronization strategy ==");
    for (label, structure) in [
        ("CAS (lock-free)", StructureKind::Treap),
        ("global mutex", StructureKind::MutexTreap),
        ("rwlock", StructureKind::RwlockTreap),
    ] {
        let cfg = TableConfig {
            structure,
            title: format!("UC via {label}"),
            ..cfg.clone()
        };
        let table = run_paper_table(&cfg);
        print!("{}", table.render());
    }
    println!();
}

/// Allocations per operation under contention: every failed attempt
/// allocates a full path copy that becomes garbage — the paper's
/// suggested Appendix-B bottleneck.
fn ablate_alloc_rate(cfg: &TableConfig, threads: usize) {
    println!("== ablation: allocation pressure (Batch workload) ==");
    let workload =
        BatchWorkload::generate(threads, cfg.prefill_size, cfg.keys_per_process, cfg.seed);
    let prefill = prefill_treap(&workload.prefill);

    for p in [1, threads] {
        let set = TreapSet::new();
        set.reset_to(prefill.clone());
        let mut streams = workload.streams();
        streams.truncate(p);
        alloc_counter::reset();
        let ops = run_concurrent(&set, streams, cfg.trial);
        let allocs = alloc_counter::allocations();
        let stats = set.stats().snapshot();
        println!(
            "  p={p}: {ops} ops, {allocs} allocations ({:.1} allocs/op), \
             {:.2} attempts/op, {:.1}% first-try",
            allocs as f64 / ops.max(1) as f64,
            stats.mean_attempts(),
            100.0 * stats.first_try_rate()
        );
    }
    println!();
}
