//! Regenerates the paper's result tables (§4 main table, Appendix-B
//! Tables 1 and 2): Batch and Random workloads, sequential-treap baseline,
//! UC speedups at the paper's process counts.
//!
//! ```text
//! paper_tables [--machine xeon5220|xeon8160|epyc7662|local|all]
//!              [--millis 300] [--trials 5] [--prefill 1000000]
//!              [--keys-per-process 100000] [--structure treap|ebst|mutex|rwlock]
//!              [--seed 42] [--csv]
//! ```
//!
//! Hardware note: the paper ran on 18-, 24- and 64-core machines. On a
//! smaller host the higher process counts are oversubscribed (more worker
//! threads than hardware threads); the private-cache effect the paper
//! isolates needs real cores, so treat oversubscribed columns as
//! correctness/stress data and see `model_figures` for the scaling shape
//! at the paper's process counts.

use std::time::Duration;

use pathcopy_bench::alloc_counter;
use pathcopy_bench::cli::Args;
use pathcopy_bench::harness::{machine_profile, run_paper_table, StructureKind, TableConfig};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn main() {
    let args = Args::from_env();
    let machine = args.get("machine").unwrap_or("local").to_string();
    let millis: u64 = args.get_or("millis", 300);
    let trials: usize = args.get_or("trials", 5);
    let prefill: usize = args.get_or("prefill", 1_000_000);
    let keys_per_process: usize = args.get_or("keys-per-process", 100_000);
    let seed: u64 = args.get_or("seed", 42);
    let csv = args.has_flag("csv");
    let structure = StructureKind::parse(args.get("structure").unwrap_or("treap"))
        .expect("--structure must be treap|ebst|mutex|rwlock");

    let machines: Vec<String> = if machine == "all" {
        vec![
            "xeon5220".to_string(),
            "xeon8160".to_string(),
            "epyc7662".to_string(),
        ]
    } else {
        vec![machine]
    };

    let hw_threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "# paper_tables: structure={structure:?} prefill={prefill} trials={trials} \
         trial_millis={millis} hardware_threads={hw_threads}"
    );

    for name in machines {
        let (label, process_counts) =
            machine_profile(&name).expect("--machine must be xeon5220|xeon8160|epyc7662|local|all");
        let oversub: Vec<usize> = process_counts
            .iter()
            .copied()
            .filter(|&p| p > hw_threads)
            .collect();
        if !oversub.is_empty() {
            println!(
                "# note: process counts {oversub:?} exceed the {hw_threads} hardware threads \
                 (oversubscribed)"
            );
        }
        let cfg = TableConfig {
            title: label.to_string(),
            process_counts,
            prefill_size: prefill,
            keys_per_process,
            key_range: 1_000_000,
            trial: Duration::from_millis(millis),
            trials,
            warmup_trials: args.get_or("warmup-trials", 1),
            seed,
            structure,
            backoff: pathcopy_core::BackoffPolicy::None,
        };
        alloc_counter::reset();
        let table = run_paper_table(&cfg);
        println!();
        if csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        println!(
            "# allocation pressure during this table: {} allocations, {} MiB\n",
            table_allocs(),
            alloc_counter::allocated_bytes() / (1024 * 1024)
        );
    }
}

fn table_allocs() -> u64 {
    alloc_counter::allocations()
}
