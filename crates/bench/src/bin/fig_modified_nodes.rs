//! Fig. 5 on the **real** implementation: run concurrent updates on the
//! persistent treap, and on every CAS failure measure how many nodes on
//! the retried search path were not on the previously-traversed path —
//! i.e. how many loads a private cache could not have served.
//!
//! The paper's lemma (Appendix A) says the expectation is at most 2 per
//! missed commit. Here there is no simulator: the histogram comes from
//! actual `Arc` pointer identity on the actual contended structure.
//!
//! ```text
//! fig_modified_nodes [--threads 4] [--prefill 100000] [--ops 20000]
//!                    [--seed 42]
//! ```

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use pathcopy_bench::cli::Args;
use pathcopy_core::{PathCopyUc, Update};
use pathcopy_trees::{sharing, treap::TreapSet};
use pathcopy_workloads::{BatchWorkload, OpStream};

fn main() {
    let args = Args::from_env();
    let threads: usize = args.get_or("threads", 4);
    let prefill: usize = args.get_or("prefill", 100_000);
    let ops_per_thread: u64 = args.get_or("ops", 20_000);
    let seed: u64 = args.get_or("seed", 42);

    let workload = BatchWorkload::generate(threads, prefill, 10_000, seed);
    let mut initial = TreapSet::empty();
    for &k in &workload.prefill {
        if let Some(next) = initial.insert(k) {
            initial = next;
        }
    }
    let uc = PathCopyUc::new(initial);

    const HIST_BUCKETS: usize = 64;
    let hist: Vec<AtomicU64> = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
    let retries = AtomicU64::new(0);
    let uncached_total = AtomicU64::new(0);
    let raw_samples: Mutex<Vec<u32>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for mut stream in workload.streams() {
            let uc = &uc;
            let hist = &hist;
            let retries = &retries;
            let uncached_total = &uncached_total;
            let raw_samples = &raw_samples;
            scope.spawn(move || {
                let mut local_samples = Vec::new();
                for _ in 0..ops_per_thread {
                    let op = stream.next_op();
                    let mut current = uc.snapshot();
                    loop {
                        let attempt = uc.try_update_once(&current, |set| {
                            let next = match op {
                                pathcopy_workloads::Op::Insert(k) => set.insert(k),
                                pathcopy_workloads::Op::Remove(k) => set.remove(&k),
                                pathcopy_workloads::Op::Contains(_) => None,
                            };
                            match next {
                                Some(next) => Update::Replace(next, true),
                                None => Update::Keep(false),
                            }
                        });
                        match attempt {
                            Ok(_) => break,
                            Err(fresh) => {
                                // The CAS failed: everything we traversed in
                                // `current` is (conceptually) cached; count
                                // the path nodes in `fresh` we have not seen.
                                let key = op.key();
                                let uncached = sharing::uncached_on_retry(
                                    current.as_map(),
                                    fresh.as_map(),
                                    &key,
                                );
                                hist[uncached.min(HIST_BUCKETS - 1)].fetch_add(1, Relaxed);
                                retries.fetch_add(1, Relaxed);
                                uncached_total.fetch_add(uncached as u64, Relaxed);
                                local_samples.push(uncached as u32);
                                current = fresh;
                            }
                        }
                    }
                }
                raw_samples.lock().unwrap().extend(local_samples);
            });
        }
    });

    let total_retries = retries.load(Relaxed);
    let mean = uncached_total.load(Relaxed) as f64 / total_retries.max(1) as f64;
    let final_len = uc.read(|s| s.len());

    println!(
        "Fig 5 (real treap) - uncached nodes on retried search paths\n\
         ------------------------------------------------------------\n\
         threads={threads} prefill={prefill} ops/thread={ops_per_thread} \
         retries observed={total_retries} final_len={final_len}\n"
    );
    if total_retries == 0 {
        println!("no CAS failures observed (increase --threads or --ops)");
        return;
    }
    println!("{:>4} {:>12} {:>10}", "k", "retries", "fraction");
    for (k, bucket) in hist.iter().enumerate().take(12) {
        let c = bucket.load(Relaxed);
        if c > 0 || k <= 4 {
            println!("{k:>4} {c:>12} {:>10.4}", c as f64 / total_retries as f64);
        }
    }
    let tail: u64 = hist.iter().skip(12).map(|b| b.load(Relaxed)).sum();
    if tail > 0 {
        println!(
            "{:>4} {tail:>12} {:>10.4}",
            ">11",
            tail as f64 / total_retries as f64
        );
    }
    println!(
        "\nmean uncached per retry = {mean:.3}  (paper's lemma: <= 2 per missed commit;\n\
         real runs can miss several commits per retry under heavy contention)"
    );

    // Median / p95 from the raw samples.
    let mut samples = raw_samples.into_inner().unwrap();
    samples.sort_unstable();
    if !samples.is_empty() {
        let med = samples[samples.len() / 2];
        let p95 = samples[(samples.len() as f64 * 0.95) as usize..][0];
        println!("median = {med}, p95 = {p95}");
    }
}
