//! Counting global allocator.
//!
//! Appendix B blames the throughput decline at high core counts on the
//! (Java) memory allocator. The Rust analog: path copying allocates
//! `O(log N)` nodes per update attempt — failed attempts included — so
//! allocation pressure grows with both throughput *and* the retry rate.
//! Benchmark binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pathcopy_bench::alloc_counter::CountingAllocator =
//!     pathcopy_bench::alloc_counter::CountingAllocator;
//! ```
//!
//! and report `allocations()` / `allocated_bytes()` per operation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts calls and bytes.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation calls since process start (or the last [`reset`]).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Relaxed)
}

/// Total bytes requested since process start (or the last [`reset`]).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Relaxed)
}

/// Total deallocation calls.
pub fn deallocations() -> u64 {
    DEALLOCATIONS.load(Relaxed)
}

/// Zeroes all counters (between benchmark phases).
pub fn reset() {
    ALLOCATIONS.store(0, Relaxed);
    ALLOCATED_BYTES.store(0, Relaxed);
    DEALLOCATIONS.store(0, Relaxed);
}

/// Runs `f` and returns `(result, allocations during f)`. Only meaningful
/// in single-threaded sections (counters are process-global).
pub fn counting<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocations();
    let r = f();
    (r, allocations() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the counting allocator is only *installed* in benchmark
    // binaries; in unit tests these functions exercise the counter
    // plumbing, not live interception.

    #[test]
    fn counters_move_and_reset() {
        reset();
        ALLOCATIONS.fetch_add(3, Relaxed);
        ALLOCATED_BYTES.fetch_add(100, Relaxed);
        assert_eq!(allocations(), 3);
        assert_eq!(allocated_bytes(), 100);
        reset();
        assert_eq!(allocations(), 0);
        assert_eq!(allocated_bytes(), 0);
        assert_eq!(deallocations(), 0);
    }

    #[test]
    fn counting_reports_delta() {
        reset();
        let (value, allocs) = counting(|| {
            ALLOCATIONS.fetch_add(5, Relaxed);
            42
        });
        assert_eq!(value, 42);
        assert_eq!(allocs, 5);
    }
}
