//! Throughput measurement: fixed-duration runs, multiple trials, and the
//! summary statistics the paper reports (each data point is an average of
//! 15 trials).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use pathcopy_workloads::OpStream;

use crate::sets::{ConcurrentSet, SequentialSet};

/// Summary over a set of trial throughputs (ops/sec).
#[derive(Debug, Clone)]
pub struct TrialStats {
    /// Per-trial throughputs.
    pub samples: Vec<f64>,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub std_dev: f64,
}

impl TrialStats {
    /// Summarizes trial samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "need at least one trial");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let std_dev = if samples.len() < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
                / (samples.len() - 1) as f64;
            var.sqrt()
        };
        TrialStats {
            samples,
            mean,
            std_dev,
        }
    }

    /// Relative standard deviation (σ / mean).
    pub fn rel_std_dev(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Runs `streams.len()` worker threads against `set` for `duration`,
/// returning total completed operations. Workers start together behind a
/// barrier; a stop flag ends the run. Generic over the core
/// [`ConcurrentSet`] trait (including `dyn` backends from the registry).
pub fn run_concurrent<S, St>(set: &S, mut streams: Vec<St>, duration: Duration) -> u64
where
    S: ConcurrentSet<i64> + ?Sized,
    St: OpStream,
{
    let threads = streams.len();
    assert!(threads > 0, "need at least one worker");
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    let mut total = 0u64;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for mut stream in streams.drain(..) {
            let barrier = &barrier;
            let stop = &stop;
            handles.push(scope.spawn(move || {
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Check the stop flag every few ops to keep the flag
                    // read off the critical path.
                    for _ in 0..16 {
                        stream.next_op().apply_to(set);
                        ops += 1;
                    }
                }
                ops
            }));
        }
        barrier.wait();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            total += h.join().expect("worker panicked");
        }
    });
    total
}

/// Runs the single-threaded baseline for `duration`, returning completed
/// operations.
pub fn run_sequential<S, St>(set: &mut S, stream: &mut St, duration: Duration) -> u64
where
    S: SequentialSet,
    St: OpStream,
{
    let start = Instant::now();
    let mut ops = 0u64;
    loop {
        for _ in 0..64 {
            set.apply(stream.next_op());
            ops += 1;
        }
        if start.elapsed() >= duration {
            return ops;
        }
    }
}

/// Repeats a throughput experiment `trials` times; `run` receives the
/// trial index and returns (ops, duration actually measured).
pub fn trials(trials: usize, run: impl FnMut(usize) -> (u64, Duration)) -> TrialStats {
    trials_with_warmup(0, trials, run)
}

/// Like [`trials`], but runs `warmup` unmeasured trials first (cold page
/// faults and frequency ramp-up otherwise dominate the first sample).
pub fn trials_with_warmup(
    warmup: usize,
    trials: usize,
    mut run: impl FnMut(usize) -> (u64, Duration),
) -> TrialStats {
    for i in 0..warmup {
        let _ = run(i);
    }
    let samples = (0..trials)
        .map(|i| {
            let (ops, elapsed) = run(warmup + i);
            ops as f64 / elapsed.as_secs_f64()
        })
        .collect();
    TrialStats::from_samples(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathcopy_concurrent::TreapSet;
    use pathcopy_workloads::RandomStream;

    #[test]
    fn trial_stats_mean_and_std() {
        let s = TrialStats::from_samples(vec![10.0, 20.0, 30.0]);
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert!((s.std_dev - 10.0).abs() < 1e-12);
        assert!((s.rel_std_dev() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = TrialStats::from_samples(vec![5.0]);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn concurrent_run_counts_ops() {
        let set = TreapSet::new();
        let streams: Vec<RandomStream> =
            (0..2).map(|i| RandomStream::new(1000, i as u64)).collect();
        let ops = run_concurrent(&set, streams, Duration::from_millis(30));
        assert!(ops > 0, "no operations completed");
    }

    #[test]
    fn sequential_run_counts_ops() {
        let mut set = pathcopy_trees::mutable::MutTreapSet::new();
        let mut stream = RandomStream::new(1000, 7);
        let ops = run_sequential(&mut set, &mut stream, Duration::from_millis(20));
        assert!(ops > 0);
        set.check_invariants();
    }

    #[test]
    fn trials_aggregates() {
        let stats = trials(3, |_| (100, Duration::from_millis(100)));
        assert_eq!(stats.samples.len(), 3);
        assert!((stats.mean - 1000.0).abs() < 1.0);
    }
}
