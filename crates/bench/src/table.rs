//! Paper-format table rendering and CSV export.
//!
//! The paper's tables look like:
//!
//! ```text
//! Workload  Seq Treap  UC 1p  UC 4p  UC 10p  UC 17p
//! Batch     451 940    0.89x  1.23x  1.47x   1.47x
//! Random    419 736    1.48x  2.38x  3.07x   3.19x
//! ```
//!
//! [`PaperTable`] reproduces that layout; [`Series`] renders generic
//! two-column figure data.

use std::fmt::Write as _;

/// One row of a paper-style results table.
#[derive(Debug, Clone)]
pub struct PaperRow {
    /// Workload name ("Batch", "Random", …).
    pub workload: String,
    /// Sequential-baseline throughput in ops/sec.
    pub seq_ops_per_sec: f64,
    /// `(process count, speedup over baseline)` per UC column.
    pub speedups: Vec<(usize, f64)>,
}

/// A paper-style results table.
#[derive(Debug, Clone)]
pub struct PaperTable {
    /// Caption printed above the table.
    pub title: String,
    /// Table rows; all rows must use the same process counts.
    pub rows: Vec<PaperRow>,
}

impl PaperTable {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let procs: Vec<usize> = self
            .rows
            .first()
            .map(|r| r.speedups.iter().map(|&(p, _)| p).collect())
            .unwrap_or_default();
        let mut header = format!("{:<10} {:>12}", "Workload", "Seq Treap");
        for p in &procs {
            let _ = write!(header, " {:>8}", format!("UC {p}p"));
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let mut line = format!(
                "{:<10} {:>12}",
                row.workload,
                group_thousands(row.seq_ops_per_sec as u64)
            );
            for &(_, s) in &row.speedups {
                let _ = write!(line, " {:>8}", format!("{s:.2}x"));
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Renders the table as CSV (`workload,seq_ops_per_sec,p,speedup`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,seq_ops_per_sec,processes,speedup\n");
        for row in &self.rows {
            for &(p, s) in &row.speedups {
                let _ = writeln!(
                    out,
                    "{},{:.0},{},{:.4}",
                    row.workload, row.seq_ops_per_sec, p, s
                );
            }
        }
        out
    }
}

/// Formats `451940` as `451 940` (the paper's number style).
pub fn group_thousands(mut n: u64) -> String {
    if n == 0 {
        return "0".to_string();
    }
    let mut groups = Vec::new();
    while n > 0 {
        groups.push((n % 1000) as u16);
        n /= 1000;
    }
    let mut out = String::new();
    for (i, g) in groups.iter().rev().enumerate() {
        if i == 0 {
            let _ = write!(out, "{g}");
        } else {
            let _ = write!(out, " {g:03}");
        }
    }
    out
}

/// A generic labelled numeric series (figure data as text).
#[derive(Debug, Clone)]
pub struct Series {
    /// Caption printed above the series.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Series {
    /// Renders aligned columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let mut header = String::new();
        for c in &self.columns {
            let _ = write!(header, "{c:>14}");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let mut line = String::new();
            for v in row {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(line, "{:>14}", *v as i64);
                } else {
                    let _ = write!(line, "{v:>14.4}");
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1000), "1 000");
        assert_eq!(group_thousands(451_940), "451 940");
        assert_eq!(group_thousands(1_000_001), "1 000 001");
    }

    #[test]
    fn paper_table_layout() {
        let t = PaperTable {
            title: "Results".into(),
            rows: vec![PaperRow {
                workload: "Batch".into(),
                seq_ops_per_sec: 451_940.0,
                speedups: vec![(1, 0.89), (4, 1.23)],
            }],
        };
        let s = t.render();
        assert!(s.contains("UC 1p"));
        assert!(s.contains("UC 4p"));
        assert!(s.contains("451 940"));
        assert!(s.contains("0.89x"));
    }

    #[test]
    fn paper_table_csv() {
        let t = PaperTable {
            title: "x".into(),
            rows: vec![PaperRow {
                workload: "Random".into(),
                seq_ops_per_sec: 10.0,
                speedups: vec![(4, 2.0)],
            }],
        };
        let csv = t.to_csv();
        assert!(csv.starts_with("workload,"));
        assert!(csv.contains("Random,10,4,2.0000"));
    }

    #[test]
    fn series_render_and_csv() {
        let s = Series {
            title: "Fig".into(),
            columns: vec!["p".into(), "speedup".into()],
            rows: vec![vec![1.0, 0.9], vec![4.0, 1.5]],
        };
        let txt = s.render();
        assert!(txt.contains("speedup"));
        let csv = s.to_csv();
        assert!(csv.contains("p,speedup"));
        assert!(csv.contains("4,1.5"));
    }
}
