//! # pathcopy-bench
//!
//! Benchmark harness regenerating every table and figure of *Unexpected
//! Scaling in Path Copying Trees*:
//!
//! * [`harness`] — the §4 / Appendix-B result tables (Batch + Random
//!   workloads, paper machine profiles);
//! * [`measure`] — duration-based throughput trials with mean/σ;
//! * [`sets`] — a uniform façade over every structure compared;
//! * [`table`] — paper-format table and series rendering;
//! * [`alloc_counter`] — a counting global allocator for the Appendix-B
//!   allocation-pressure measurements;
//! * [`cli`] — dependency-free argument parsing for the binaries.
//!
//! Binaries: `paper_tables` (the result tables), `model_figures` (the
//! Appendix-A model figures), `fig_modified_nodes` (Fig. 5 on the real
//! treap), `ablations` (no-op skip, backoff, structures, locks,
//! allocation rate).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_counter;
pub mod cli;
pub mod harness;
pub mod measure;
pub mod sets;
pub mod table;
