//! Backend plumbing for the benchmark runners.
//!
//! The per-backend façade trait that used to live here is gone: the
//! harness is generic over
//! [`pathcopy_core::ConcurrentSet`] (re-exported below), which every
//! backend in `pathcopy-concurrent` implements, and backends are
//! constructed through [`pathcopy_concurrent::registry`] or
//! [`StructureKind::constructor`](crate::harness::StructureKind::constructor)
//! instead of hand-wired impls. What remains here is the sequential
//! baseline trait and the shared prefill builders.

use pathcopy_trees::mutable::MutTreapSet;
use pathcopy_trees::{treap, ExternalBstSet as PExternalBstSet};
use pathcopy_workloads::Op;

pub use pathcopy_core::ConcurrentSet;

/// Single-threaded set interface for the "Seq Treap" baseline.
pub trait SequentialSet {
    /// Inserts `key`; `true` if the set changed.
    fn insert(&mut self, key: i64) -> bool;
    /// Removes `key`; `true` if the set changed.
    fn remove(&mut self, key: i64) -> bool;
    /// Membership test.
    fn contains(&self, key: i64) -> bool;
    /// Applies one workload operation.
    fn apply(&mut self, op: Op) -> bool {
        match op {
            Op::Insert(k) => self.insert(k),
            Op::Remove(k) => self.remove(k),
            Op::Contains(k) => {
                let _ = self.contains(k);
                false
            }
        }
    }
}

impl SequentialSet for MutTreapSet<i64> {
    fn insert(&mut self, key: i64) -> bool {
        MutTreapSet::insert(self, key)
    }
    fn remove(&mut self, key: i64) -> bool {
        MutTreapSet::remove(self, &key)
    }
    fn contains(&self, key: i64) -> bool {
        MutTreapSet::contains(self, &key)
    }
}

/// Builds the persistent prefill treap once; cloning it per trial is O(1)
/// thanks to persistence.
pub fn prefill_treap(keys: &[i64]) -> treap::TreapSet<i64> {
    let mut set = treap::TreapSet::empty();
    for &k in keys {
        if let Some(next) = set.insert(k) {
            set = next;
        }
    }
    set
}

/// Builds the persistent prefill external BST.
pub fn prefill_ebst(keys: &[i64]) -> PExternalBstSet<i64> {
    let mut set = PExternalBstSet::new();
    for &k in keys {
        if let Some(next) = set.insert(k) {
            set = next;
        }
    }
    set
}

/// Builds the mutable baseline treap.
pub fn prefill_mutable(keys: &[i64]) -> MutTreapSet<i64> {
    keys.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathcopy_concurrent::TreapSet;

    #[test]
    fn core_trait_dispatches_correctly() {
        let s = TreapSet::new();
        assert!(ConcurrentSet::insert(&s, 1));
        assert!(ConcurrentSet::contains(&s, &1));
        assert!(Op::Remove(1).apply_to(&s));
        assert!(!Op::Contains(1).apply_to(&s));
        assert!(ConcurrentSet::is_empty(&s));
    }

    #[test]
    fn prefills_agree() {
        let keys = vec![5, 1, 9, 1, 5]; // duplicates collapse
        let t = prefill_treap(&keys);
        let e = prefill_ebst(&keys);
        let m = prefill_mutable(&keys);
        assert_eq!(t.len(), 3);
        assert_eq!(e.len(), 3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn sequential_facade_works() {
        let mut s = MutTreapSet::new();
        assert!(SequentialSet::insert(&mut s, 2));
        assert!(s.apply(Op::Insert(3)));
        assert!(!s.apply(Op::Insert(3)));
        assert!(s.apply(Op::Remove(2)));
    }
}
