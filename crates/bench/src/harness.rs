//! End-to-end experiment orchestration for the paper's result tables.
//!
//! A table run measures, per workload:
//!
//! 1. the sequential baseline ("Seq Treap"): a mutable treap driven by
//!    one thread;
//! 2. the universal construction at each process count; the speedup
//!    column is `UC throughput / baseline throughput`.
//!
//! Prefilling exploits persistence: the 10⁶-key initial treap is built
//! **once** and cloned (O(1)) into a fresh concurrent set for every
//! trial, so trials start from identical state without re-inserting a
//! million keys each time.

use std::time::{Duration, Instant};

use pathcopy_concurrent::{ExternalBstSet, LockedTreapSet, RwLockedTreapSet, TreapSet};
use pathcopy_core::BackoffPolicy;
use pathcopy_workloads::{BatchWorkload, OpStream, RandomWorkload};

use crate::measure::{run_concurrent, run_sequential};
use crate::sets::{prefill_ebst, prefill_mutable, prefill_treap, ConcurrentSet};
use crate::table::{PaperRow, PaperTable};

/// A constructor producing a fresh, prefilled backend for one trial —
/// the harness's registry entry. Boxing the backend behind the core
/// [`ConcurrentSet`] trait is what lets one `measure_rows` drive every
/// structure, instead of the per-backend copies this file used to carry.
pub type BackendCtor = Box<dyn Fn() -> Box<dyn ConcurrentSet<i64>> + Send + Sync>;

/// Which concurrent structure the UC columns use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// Path-copying treap under the lock-free UC (the paper's subject).
    Treap,
    /// Path-copying external BST under the lock-free UC (the model tree).
    ExternalBst,
    /// Treap under one global mutex (the intro's "simplest UC").
    MutexTreap,
    /// Treap under a readers–writer lock.
    RwlockTreap,
}

impl StructureKind {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "treap" => Some(StructureKind::Treap),
            "ebst" | "external-bst" => Some(StructureKind::ExternalBst),
            "mutex" | "mutex-treap" => Some(StructureKind::MutexTreap),
            "rwlock" | "rwlock-treap" => Some(StructureKind::RwlockTreap),
            _ => None,
        }
    }

    /// Builds the trial constructor for this structure: the persistent
    /// prefill version is built **once** here and cloned (O(1)) into a
    /// fresh backend per call, so trials start from identical state
    /// without re-inserting the keys.
    pub fn constructor(self, prefill_keys: &[i64], backoff: BackoffPolicy) -> BackendCtor {
        match self {
            StructureKind::Treap => {
                let prefill = prefill_treap(prefill_keys);
                Box::new(move || {
                    let set = TreapSet::with_backoff(backoff);
                    set.reset_to(prefill.clone());
                    Box::new(set)
                })
            }
            StructureKind::ExternalBst => {
                let prefill = prefill_ebst(prefill_keys);
                Box::new(move || {
                    let set = ExternalBstSet::with_backoff(backoff);
                    set.reset_to(prefill.clone());
                    Box::new(set)
                })
            }
            StructureKind::MutexTreap => {
                let prefill = prefill_treap(prefill_keys);
                Box::new(move || Box::new(LockedTreapSet::from_version(prefill.clone())))
            }
            StructureKind::RwlockTreap => {
                let prefill = prefill_treap(prefill_keys);
                Box::new(move || Box::new(RwLockedTreapSet::from_version(prefill.clone())))
            }
        }
    }
}

/// Parameters of a full paper-table run.
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Caption for the rendered table.
    pub title: String,
    /// UC process counts (the paper's per-machine columns).
    pub process_counts: Vec<usize>,
    /// Prefill size (the paper uses 10⁶).
    pub prefill_size: usize,
    /// Batch workload: keys per process block.
    pub keys_per_process: usize,
    /// Random workload: keys drawn from `[-key_range, key_range]`.
    pub key_range: i64,
    /// Measured duration of each trial.
    pub trial: Duration,
    /// Trials per data point (the paper averages 15).
    pub trials: usize,
    /// Unmeasured warmup trials before each data point.
    pub warmup_trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Structure under test.
    pub structure: StructureKind,
    /// Retry backoff (the paper uses none).
    pub backoff: BackoffPolicy,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            title: String::from("Path-copying UC vs sequential treap"),
            process_counts: vec![1, 2, 4],
            prefill_size: 1_000_000,
            keys_per_process: 100_000,
            key_range: 1_000_000,
            trial: Duration::from_millis(300),
            trials: 5,
            warmup_trials: 1,
            seed: 42,
            structure: StructureKind::Treap,
            backoff: BackoffPolicy::None,
        }
    }
}

/// The paper's per-machine process-count columns (§4 and Appendix B).
pub fn machine_profile(name: &str) -> Option<(&'static str, Vec<usize>)> {
    match name {
        "xeon5220" => Some(("Intel Xeon 5220 (18 cores) — paper §4", vec![1, 4, 10, 17])),
        "xeon8160" => Some((
            "Intel Xeon Platinum 8160 (24 cores) — paper Table 1",
            vec![1, 6, 12, 23],
        )),
        "epyc7662" => Some((
            "AMD EPYC 7662 (64 cores) — paper Table 2",
            vec![1, 8, 16, 32, 63],
        )),
        "local" => {
            let cores = std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(2);
            let mut ps = vec![1];
            if cores >= 2 {
                ps.push(2);
            }
            if cores > 2 {
                ps.push(cores);
            }
            ps.push(2 * cores); // one oversubscribed point, flagged in docs
            Some(("Local machine (last column oversubscribed)", ps))
        }
        _ => None,
    }
}

/// Measures one workload: sequential baseline plus UC speedups. One
/// generic body for every backend — the structure arrives as a
/// [`BackendCtor`] from [`StructureKind::constructor`].
fn measure_rows<St, MkStreams>(
    workload_name: &str,
    cfg: &TableConfig,
    seq_throughput: f64,
    make_set: &BackendCtor,
    make_streams: MkStreams,
) -> PaperRow
where
    St: OpStream,
    MkStreams: Fn(usize, usize) -> Vec<St>, // (processes, trial index)
{
    let mut speedups = Vec::with_capacity(cfg.process_counts.len());
    for &p in &cfg.process_counts {
        let stats = crate::measure::trials_with_warmup(cfg.warmup_trials, cfg.trials, |trial| {
            let set = make_set();
            let streams = make_streams(p, trial);
            let started = Instant::now();
            let ops = run_concurrent(set.as_ref(), streams, cfg.trial);
            (ops, started.elapsed())
        });
        speedups.push((p, stats.mean / seq_throughput));
        eprintln!(
            "  [{workload_name}] p={p}: {:.0} ops/s (±{:.1}%), speedup {:.2}x",
            stats.mean,
            100.0 * stats.rel_std_dev(),
            stats.mean / seq_throughput
        );
    }
    PaperRow {
        workload: workload_name.to_string(),
        seq_ops_per_sec: seq_throughput,
        speedups,
    }
}

/// Runs the Batch row (§4.1).
pub fn run_batch_row(cfg: &TableConfig) -> PaperRow {
    let max_p = cfg.process_counts.iter().copied().max().unwrap_or(1);
    let workload = BatchWorkload::generate(max_p, cfg.prefill_size, cfg.keys_per_process, cfg.seed);

    // Sequential baseline: the mutable treap on one thread, running the
    // first process's batch stream.
    let mut seq_set = prefill_mutable(&workload.prefill);
    let seq_stats = crate::measure::trials_with_warmup(cfg.warmup_trials, cfg.trials, |_| {
        let mut stream = workload.streams().remove(0);
        let started = Instant::now();
        let ops = run_sequential(&mut seq_set, &mut stream, cfg.trial);
        (ops, started.elapsed())
    });
    eprintln!(
        "  [Batch] seq baseline: {:.0} ops/s (±{:.1}%)",
        seq_stats.mean,
        100.0 * seq_stats.rel_std_dev()
    );

    let streams_for = |p: usize, _trial: usize| {
        let mut s = workload.streams();
        s.truncate(p);
        s
    };

    let make_set = cfg.structure.constructor(&workload.prefill, cfg.backoff);
    measure_rows("Batch", cfg, seq_stats.mean, &make_set, streams_for)
}

/// Runs the Random row (§4.2).
pub fn run_random_row(cfg: &TableConfig) -> PaperRow {
    let max_p = cfg.process_counts.iter().copied().max().unwrap_or(1);
    let workload = RandomWorkload::generate(max_p, cfg.prefill_size, cfg.key_range, cfg.seed ^ 1);

    let mut seq_set = prefill_mutable(&workload.prefill);
    let seq_stats = crate::measure::trials_with_warmup(cfg.warmup_trials, cfg.trials, |trial| {
        let mut stream = pathcopy_workloads::RandomStream::new(
            cfg.key_range,
            cfg.seed ^ (0xbeef + trial as u64),
        );
        let started = Instant::now();
        let ops = run_sequential(&mut seq_set, &mut stream, cfg.trial);
        (ops, started.elapsed())
    });
    eprintln!(
        "  [Random] seq baseline: {:.0} ops/s (±{:.1}%)",
        seq_stats.mean,
        100.0 * seq_stats.rel_std_dev()
    );

    let streams_for = |p: usize, trial: usize| {
        (0..p)
            .map(|i| {
                pathcopy_workloads::RandomStream::new(
                    cfg.key_range,
                    cfg.seed ^ (0x1234_5678 + (trial * 1000 + i) as u64),
                )
            })
            .collect::<Vec<_>>()
    };

    let make_set = cfg.structure.constructor(&workload.prefill, cfg.backoff);
    measure_rows("Random", cfg, seq_stats.mean, &make_set, streams_for)
}

/// Runs the full two-row table (Batch + Random) for one machine profile.
pub fn run_paper_table(cfg: &TableConfig) -> PaperTable {
    eprintln!("== {} ==", cfg.title);
    let batch = run_batch_row(cfg);
    let random = run_random_row(cfg);
    PaperTable {
        title: cfg.title.clone(),
        rows: vec![batch, random],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TableConfig {
        TableConfig {
            title: "test".into(),
            process_counts: vec![1, 2],
            prefill_size: 2_000,
            keys_per_process: 500,
            key_range: 2_000,
            trial: Duration::from_millis(25),
            trials: 2,
            warmup_trials: 0,
            seed: 7,
            structure: StructureKind::Treap,
            backoff: BackoffPolicy::None,
        }
    }

    #[test]
    fn machine_profiles_match_paper_columns() {
        assert_eq!(machine_profile("xeon5220").unwrap().1, vec![1, 4, 10, 17]);
        assert_eq!(machine_profile("xeon8160").unwrap().1, vec![1, 6, 12, 23]);
        assert_eq!(
            machine_profile("epyc7662").unwrap().1,
            vec![1, 8, 16, 32, 63]
        );
        assert!(machine_profile("local").is_some());
        assert!(machine_profile("nonsense").is_none());
    }

    #[test]
    fn structure_kind_parsing() {
        assert_eq!(StructureKind::parse("treap"), Some(StructureKind::Treap));
        assert_eq!(
            StructureKind::parse("ebst"),
            Some(StructureKind::ExternalBst)
        );
        assert_eq!(StructureKind::parse("bogus"), None);
    }

    #[test]
    fn batch_row_produces_speedups() {
        let row = run_batch_row(&tiny());
        assert_eq!(row.workload, "Batch");
        assert!(row.seq_ops_per_sec > 0.0);
        assert_eq!(row.speedups.len(), 2);
        for &(_, s) in &row.speedups {
            assert!(s > 0.0);
        }
    }

    #[test]
    fn random_row_produces_speedups() {
        let row = run_random_row(&tiny());
        assert_eq!(row.workload, "Random");
        assert!(row.seq_ops_per_sec > 0.0);
        assert!(row.speedups.iter().all(|&(_, s)| s > 0.0));
    }

    #[test]
    fn full_table_runs_on_alternate_structures() {
        for structure in [StructureKind::MutexTreap, StructureKind::ExternalBst] {
            let cfg = TableConfig {
                structure,
                process_counts: vec![1],
                trials: 1,
                ..tiny()
            };
            let table = run_paper_table(&cfg);
            assert_eq!(table.rows.len(), 2);
        }
    }
}
