//! Scaling of the sharded UC map versus the paper's single-root
//! construction on a write-only workload.
//!
//! The paper's model says the single `Root_Ptr` CAS loop stops scaling
//! once update work no longer dominates; hash-sharding the register is
//! the first step past that ceiling. This bench measures update
//! throughput of 1/4/16-shard `ShardedTreapMap`s against the single-root
//! `TreapMap` baseline at 1/2/4/8 threads. Expectation: at 8 threads the
//! 16-shard map clearly beats the single root — by reduced CAS-retry
//! waste alone on one core, and by real parallelism on many.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_concurrent::{ShardedTreapMap, TreapMap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const KEY_RANGE: i64 = 1 << 16;
const OPS_PER_THREAD_PER_ITER: u64 = 2_000;

/// Per-thread key stream: the workspace's seedable xoshiro generator,
/// cheap enough to not be the bottleneck being measured.
fn next_key(rng: &mut SmallRng) -> i64 {
    rng.gen_range(0..KEY_RANGE)
}

/// Runs `threads` workers, each performing alternating inserts/removes of
/// random keys; returns the wall time of the update loops only. Workers
/// rendezvous on a barrier before the clock starts, so thread spawn cost
/// (which grows with the thread count) never pollutes the per-op numbers.
fn run_updates<M: Sync>(map: &M, threads: usize, apply: impl Fn(&M, i64, bool) + Sync) -> Duration {
    let seed = AtomicU64::new(1);
    let barrier = std::sync::Barrier::new(threads + 1);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let map = &map;
                let apply = &apply;
                let barrier = &barrier;
                let mut rng = SmallRng::seed_from_u64(seed.fetch_add(1, Relaxed));
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..OPS_PER_THREAD_PER_ITER {
                        let k = next_key(&mut rng);
                        apply(map, k, i % 2 == 0);
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for w in workers {
            w.join().expect("bench worker panicked");
        }
        start.elapsed()
    })
}

fn bench_sharded_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(1500));
    group.warm_up_time(Duration::from_millis(300));

    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("single_root", threads), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let map: TreapMap<i64, u64> = TreapMap::new();
                    let elapsed = run_updates(&map, threads, |m, k, ins| {
                        if ins {
                            m.insert(k, k as u64);
                        } else {
                            m.remove(&k);
                        }
                    });
                    total += elapsed / (threads as u32 * OPS_PER_THREAD_PER_ITER as u32);
                }
                total
            })
        });
        for shards in [1usize, 4, 16] {
            group.bench_function(
                BenchmarkId::new(format!("sharded_{shards}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let map: ShardedTreapMap<i64, u64> =
                                ShardedTreapMap::with_shards(shards);
                            let elapsed = run_updates(&map, threads, |m, k, ins| {
                                if ins {
                                    m.insert(k, k as u64);
                                } else {
                                    m.remove(&k);
                                }
                            });
                            total += elapsed / (threads as u32 * OPS_PER_THREAD_PER_ITER as u32);
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_snapshot_all(c: &mut Criterion) {
    // The cost of the coherent cut while 4 writers churn: the price of
    // consistency across shards.
    let mut group = c.benchmark_group("sharded_snapshot_all");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(1000));
    group.warm_up_time(Duration::from_millis(200));
    for shards in [4usize, 16] {
        group.bench_function(BenchmarkId::new("under_churn", shards), |b| {
            b.iter_custom(|iters| {
                let map: ShardedTreapMap<i64, u64> = ShardedTreapMap::with_shards(shards);
                for k in 0..10_000 {
                    map.insert(k, 0);
                }
                let stop = std::sync::atomic::AtomicBool::new(false);
                let mut elapsed = Duration::ZERO;
                std::thread::scope(|s| {
                    for t in 0..4u64 {
                        let map = &map;
                        let stop = &stop;
                        let mut rng = SmallRng::seed_from_u64(t);
                        s.spawn(move || {
                            while !stop.load(Relaxed) {
                                let k = next_key(&mut rng);
                                map.insert(k, k as u64);
                            }
                        });
                    }
                    let start = Instant::now();
                    for _ in 0..iters {
                        criterion::black_box(map.snapshot_all());
                    }
                    elapsed = start.elapsed();
                    stop.store(true, Relaxed);
                });
                elapsed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_scaling, bench_snapshot_all);
criterion_main!(benches);
