//! A4 ablation as a Criterion bench: the lock-free UC against the
//! intro's lock-based universal constructions, same persistent treap
//! underneath.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_bench::measure::run_concurrent;
use pathcopy_bench::sets::{prefill_treap, ConcurrentSet};
use pathcopy_concurrent::{LockedTreapSet, RwLockedTreapSet, TreapSet};
use pathcopy_workloads::BatchWorkload;

const PREFILL: usize = 20_000;
const KEYS: usize = 4_000;

fn run<S: ConcurrentSet>(set: &S, workload: &BatchWorkload, threads: usize) -> Duration {
    let mut streams = workload.streams();
    streams.truncate(threads);
    let start = Instant::now();
    run_concurrent(set, streams, Duration::from_millis(100));
    start.elapsed()
}

fn bench_uc_vs_locks(c: &mut Criterion) {
    let workload = BatchWorkload::generate(2, PREFILL, KEYS, 42);
    let prefill = prefill_treap(&workload.prefill);

    let mut group = c.benchmark_group("uc_vs_locks/batch_2_threads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function(BenchmarkId::new("cas_uc", 2), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let set = TreapSet::from_version(prefill.clone());
                total += run(&set, &workload, 2);
            }
            total
        })
    });
    group.bench_function(BenchmarkId::new("mutex_uc", 2), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let set = LockedTreapSet::from_version(prefill.clone());
                total += run(&set, &workload, 2);
            }
            total
        })
    });
    group.bench_function(BenchmarkId::new("rwlock_uc", 2), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let set = RwLockedTreapSet::from_version(prefill.clone());
                total += run(&set, &workload, 2);
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_uc_vs_locks);
criterion_main!(benches);
