//! A4 ablation as a Criterion bench: the lock-free UC against the
//! intro's lock-based universal constructions (and every other set
//! backend), same persistent structures underneath.
//!
//! Backends come from the shared registry
//! ([`pathcopy_concurrent::registry::set_backends`]), so a new backend
//! shows up here without touching this file.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_bench::measure::run_concurrent;
use pathcopy_concurrent::registry::set_backends;
use pathcopy_core::ConcurrentSet;
use pathcopy_workloads::BatchWorkload;

const PREFILL: usize = 5_000;
const KEYS: usize = 2_000;
const THREADS: usize = 2;

fn run(set: &dyn ConcurrentSet<i64>, workload: &BatchWorkload) -> Duration {
    let mut streams = workload.streams();
    streams.truncate(THREADS);
    let start = Instant::now();
    run_concurrent(set, streams, Duration::from_millis(100));
    start.elapsed()
}

fn bench_uc_vs_locks(c: &mut Criterion) {
    let workload = BatchWorkload::generate(THREADS, PREFILL, KEYS, 42);

    let mut group = c.benchmark_group("uc_vs_locks/batch_2_threads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for backend in set_backends() {
        group.bench_function(BenchmarkId::new(backend.name, THREADS), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    // Fresh prefilled instance per iteration; prefill
                    // happens outside the measured window.
                    let set = (backend.make)();
                    for &k in &workload.prefill {
                        set.insert(k);
                    }
                    total += run(set.as_ref(), &workload);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uc_vs_locks);
criterion_main!(benches);
