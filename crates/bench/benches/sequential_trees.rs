//! Microbenchmarks of the persistent sequential structures vs the mutable
//! baseline — the per-operation cost gap that sets the paper's `UC 1p`
//! column apart from `Seq Treap`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pathcopy_trees::mutable::MutTreapSet;
use pathcopy_trees::{avl::AvlSet, rbtree::RbSet, ExternalBstSet, TreapSet};

const N: i64 = 10_000;

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_10k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(400));

    group.bench_function(BenchmarkId::new("mutable_treap", N), |b| {
        b.iter(|| {
            let mut s = MutTreapSet::new();
            for k in 0..N {
                s.insert(black_box(k));
            }
            s.len()
        })
    });
    group.bench_function(BenchmarkId::new("persistent_treap", N), |b| {
        b.iter(|| {
            let mut s = TreapSet::empty();
            for k in 0..N {
                if let Some(next) = s.insert(black_box(k)) {
                    s = next;
                }
            }
            s.len()
        })
    });
    group.bench_function(BenchmarkId::new("persistent_avl", N), |b| {
        b.iter(|| {
            let mut s = AvlSet::new();
            for k in 0..N {
                if let Some(next) = s.insert(black_box(k)) {
                    s = next;
                }
            }
            s.len()
        })
    });
    group.bench_function(BenchmarkId::new("persistent_rbtree", N), |b| {
        b.iter(|| {
            let mut s = RbSet::new();
            for k in 0..N {
                if let Some(next) = s.insert(black_box(k)) {
                    s = next;
                }
            }
            s.len()
        })
    });
    group.bench_function(BenchmarkId::new("persistent_external_bst", N), |b| {
        b.iter(|| {
            let mut s = ExternalBstSet::new();
            for k in 0..N {
                if let Some(next) = s.insert(black_box(k)) {
                    s = next;
                }
            }
            s.len()
        })
    });
    group.finish();
}

fn bench_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("contains_hit");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let treap: TreapSet<i64> = (0..N).collect();
    let mutable: MutTreapSet<i64> = (0..N).collect();
    group.bench_function("persistent_treap", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % N;
            black_box(treap.contains(&k))
        })
    });
    group.bench_function("mutable_treap", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % N;
            black_box(mutable.contains(&k))
        })
    });
    group.finish();
}

fn bench_remove_insert_cycle(c: &mut Criterion) {
    // The Batch workload inner loop at steady state.
    let mut group = c.benchmark_group("remove_insert_cycle");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(400));
    let base: TreapSet<i64> = (0..N).collect();
    group.bench_function("persistent_treap", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % N;
            let removed = base.remove(&k).expect("present");
            black_box(removed.insert(k).expect("absent"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_inserts,
    bench_lookups,
    bench_remove_insert_cycle
);
criterion_main!(benches);
