//! E2–E5: timing of the Appendix-A model simulators (the figure
//! regenerators themselves), so regressions in the sim core are caught.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_sim::{simulate_concurrent, simulate_sequential, ConcConfig, SeqConfig};

fn bench_sequential_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/sequential");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.bench_function("n14_m10", |b| {
        b.iter(|| {
            black_box(simulate_sequential(SeqConfig {
                n: 1 << 14,
                m: 1 << 10,
                r: 100,
                ops: 2_000,
                warmup: 2_000,
                seed: 1,
                path_copy: false,
                cache_model: pathcopy_sim::seq::CacheModel::Lru,
            }))
        })
    });
    group.finish();
}

fn bench_concurrent_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/concurrent");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for p in [4usize, 17, 63] {
        group.bench_function(BenchmarkId::new("n14_r100", p), |b| {
            b.iter(|| {
                black_box(simulate_concurrent(ConcConfig {
                    ops: 2_000,
                    warmup: 500,
                    ..ConcConfig::new(1 << 14, p, 100)
                }))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential_sim, bench_concurrent_sim);
criterion_main!(benches);
