//! Diff-sync vs full-sync transfer cost as write locality varies.
//!
//! Setup per locality: a primary serving a 100k-key map, a bootstrapped
//! replica, then a 4 000-op write burst whose keys come from the
//! workspace's Zipf sampler (`theta = 0` is uniform; higher theta
//! concentrates the burst on hot keys, shrinking the *distinct* change
//! set). The replica then catches up once.
//!
//! The printed table is the acceptance claim in numbers: `diff_bytes`
//! tracks the distinct keys touched — O(changes) — while `full_bytes`
//! is the whole map every time — O(n); their ratio grows as locality
//! rises. The criterion timings measure the wire pulls themselves:
//! `pull_diff` (server-side pruned diff + transfer) against `full_sync`
//! (paging a pinned version down in bounded segments).
//!
//! Run `BENCH_JSON=out.jsonl cargo bench --bench replica_sync` to capture
//! machine-readable medians (CI uploads these as `BENCH_ci.json`).

use std::collections::BTreeSet;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_bench::table::Series;
use pathcopy_concurrent::ShardedTreapMap;
use pathcopy_replica::{Replica, SyncOutcome};
use pathcopy_server::backend::ShardedServe;
use pathcopy_server::{backend, Client, ServerConfig};
use pathcopy_workloads::zipf::Zipf;
use rand::{rngs::StdRng, SeedableRng};

const MAP_SIZE: i64 = 100_000;
const WRITE_BURST: usize = 4_000;

fn bench_replica_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("replica_sync");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(800));

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (label, theta) in [("uniform", 0.0), ("zipf_0.6", 0.6), ("zipf_0.99", 0.99)] {
        // Primary with the full map.
        let map: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(8);
        for k in 0..MAP_SIZE {
            map.insert(k, k);
        }
        // Workers bound concurrent connections (replica + writer +
        // puller stay open at once), so give the pool headroom.
        let server = pathcopy_server::spawn(
            Box::new(ShardedServe::new(map)),
            ServerConfig::with_workers(4),
        )
        .expect("bind ephemeral loopback port");
        let addr = server.addr();

        // Bootstrap (the O(n) transfer, byte-counted as full_bytes).
        let mut replica =
            Replica::connect(addr, backend::by_name("sharded_map_8").unwrap()).expect("replica");
        assert!(matches!(
            replica.sync_once().expect("bootstrap"),
            SyncOutcome::FullSync { .. }
        ));
        let boot_epoch = replica.applied_epoch();

        // Zipf write burst, then one published epoch on top.
        let mut writer = Client::connect(addr).expect("writer");
        let mut zipf = Zipf::new(MAP_SIZE as u64, theta);
        let mut rng = StdRng::seed_from_u64(0x5eed ^ theta.to_bits());
        let mut distinct = BTreeSet::new();
        for i in 0..WRITE_BURST {
            let k = zipf.sample(&mut rng) as i64;
            distinct.insert(k);
            writer.insert(k, -(i as i64)).expect("burst write");
        }
        writer.publish().expect("post-burst epoch");

        // Catch-up (the O(changes) transfer, byte-counted as diff_bytes).
        let caught = replica.sync_once().expect("catch up");
        let SyncOutcome::Diff { changes, .. } = caught else {
            panic!("catch-up must be incremental, got {caught:?}")
        };
        assert!(changes <= distinct.len(), "diff bounded by touched keys");
        let stats = replica.stats();
        drop(writer);
        drop(replica); // frees their pool workers before the timing runs

        // Wire-pull timings on a separate connection (both read pinned
        // feed versions, so iterations are repeatable).
        let mut puller = Client::connect(addr).expect("puller");
        group.bench_function(BenchmarkId::new("pull_diff", label), |b| {
            b.iter(|| puller.pull_diff(boot_epoch).expect("pull diff").1.len())
        });
        group.bench_function(BenchmarkId::new("full_sync", label), |b| {
            b.iter(|| {
                let (epoch, first, mut done) =
                    puller.full_sync_page(None, None, 0).expect("first page");
                let mut total = first.len();
                let mut after = first.last().map(|(k, _)| *k);
                while !done {
                    let (_, page, page_done) = puller
                        .full_sync_page(Some(epoch), after, 0)
                        .expect("next page");
                    after = page.last().map(|(k, _)| *k).or(after);
                    total += page.len();
                    done = page_done;
                }
                total
            })
        });

        rows.push(vec![
            theta,
            distinct.len() as f64,
            stats.diff_bytes as f64,
            stats.full_bytes as f64,
            stats.full_bytes as f64 / (stats.diff_bytes.max(1)) as f64,
        ]);
        server.shutdown();
    }
    group.finish();

    let table = Series {
        title: format!("replica_sync transfer cost ({MAP_SIZE}-key map, {WRITE_BURST}-op burst)"),
        columns: vec![
            "theta".into(),
            "distinct_keys".into(),
            "diff_bytes".into(),
            "full_bytes".into(),
            "full/diff".into(),
        ],
        rows,
    };
    print!("{}", table.render());
}

criterion_group!(benches, bench_replica_sync);
criterion_main!(benches);
