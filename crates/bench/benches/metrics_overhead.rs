//! What the tracing layer costs — and proves it costs nothing when off.
//!
//! Three series over the same synthetic "request" (a handful of
//! arithmetic the optimizer can't fold away):
//!
//! * `baseline` — the work alone, no recorder anywhere near it;
//! * `disabled` — the work plus a full [`Recorder::Disabled`] stage
//!   chain (`start`/`lap`/`lap`), the exact calls the event loop makes
//!   per request when `ServerConfig::metrics(false)`. The recorder
//!   short-circuits before any clock read or atomic, so this series
//!   must sit on top of `baseline` — that overlap *is* the tentpole's
//!   zero-cost claim, checked in CI as a trend next to the others;
//! * `enabled` — the work plus live recording through the same chain:
//!   two `Instant::now()` reads and three relaxed atomic adds per
//!   stage boundary. The gap to `baseline` is the true price of
//!   always-on tracing (tens of nanoseconds — noise against a
//!   microsecond round trip).
//!
//! A fourth series, `record_only`, isolates the histogram's own
//! `record` (bucket index + two atomic adds + atomic max), the unit the
//! loadgen path pays per sample.
//!
//! The `overhead/disabled_minus_baseline` gauge reports the measured
//! per-op delta in nanoseconds; near zero (it can even read slightly
//! negative from run-to-run noise) is the expected steady state.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathcopy_metrics::{LatencyHistogram, Recorder};

/// A stand-in for per-request work: enough dependent arithmetic that
/// the loop body cannot collapse, small enough that recorder overhead
/// would show.
#[inline]
fn fake_request(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..8 {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
    }
    x
}

/// One request's worth of stage tracing: the same
/// `start` → `lap` → `lap` chain the event loop drives.
#[inline]
fn traced_request(seed: u64, queue_wait: &Recorder, execute: &Recorder) -> u64 {
    let t0 = queue_wait.start();
    let t1 = queue_wait.lap(t0);
    let out = fake_request(seed);
    execute.lap(t1);
    out
}

fn measure<F: FnMut(u64) -> u64>(iters: u64, mut f: F) -> Duration {
    let start = Instant::now();
    for i in 0..iters {
        black_box(f(i));
    }
    start.elapsed()
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));

    group.bench_function("baseline", |b| {
        b.iter_custom(|iters| measure(iters, fake_request))
    });

    let off = (Recorder::Disabled, Recorder::Disabled);
    group.bench_function("disabled", |b| {
        b.iter_custom(|iters| measure(iters, |i| traced_request(i, &off.0, &off.1)))
    });

    let on = (Recorder::enabled(), Recorder::enabled());
    group.bench_function("enabled", |b| {
        b.iter_custom(|iters| measure(iters, |i| traced_request(i, &on.0, &on.1)))
    });

    let hist = LatencyHistogram::new();
    group.bench_function("record_only", |b| {
        b.iter_custom(|iters| {
            measure(iters, |i| {
                hist.record(i & 0xffff);
                i
            })
        })
    });
    group.finish();

    // The zero-cost claim as one number: per-op disabled-chain cost
    // minus per-op baseline cost, over the same long burst back to
    // back. Noise can push it slightly negative; a sustained positive
    // trend means the disabled path grew a real cost.
    const BURST: u64 = 2_000_000;
    let base = measure(BURST, fake_request);
    let disabled = measure(BURST, |i| traced_request(i, &off.0, &off.1));
    let delta_ns = (disabled.as_nanos() as f64 - base.as_nanos() as f64) / BURST as f64;
    c.report_gauge("overhead/disabled_minus_baseline", delta_ns, "ns");
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
