//! What the trace layer costs — and proves it costs nothing when off.
//!
//! Four series over the same synthetic "request" (dependent arithmetic
//! the optimizer can't fold away), driving the exact
//! [`TraceRecorder`] calls the event loop makes per request:
//!
//! * `baseline` — the work alone, no recorder anywhere near it;
//! * `disabled` — the work plus a full `begin` → `span` → `span` chain
//!   on [`TraceRecorder::Disabled`], with a trace context present on
//!   the request (a client may always send one; an untraced node must
//!   still shrug it off). The recorder short-circuits before any clock
//!   read or ring write, so this series must sit on top of `baseline`
//!   — the same zero-cost contract `metrics_overhead` pins for the
//!   histogram layer;
//! * `untraced` — a *live* recorder serving a request that carries no
//!   context: the steady-state cost of enabling tracing on a node
//!   whose traffic is mostly unsampled. Also branch-only;
//! * `enabled` — live recorder, sampled context: two clock reads and
//!   two seqlock ring writes per request. The gap to `baseline` is the
//!   true price of a sampled request (tens of nanoseconds — and only
//!   for the sampled fraction).
//!
//! The `trace_overhead/disabled_minus_baseline` gauge reports the
//! measured per-op delta in nanoseconds; near zero (slightly negative
//! is run-to-run noise) is the expected steady state.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathcopy_metrics::Stage;
use pathcopy_trace::{Flight, TraceContext, TraceRecorder};

/// A stand-in for per-request work: enough dependent arithmetic that
/// the loop body cannot collapse, small enough that recorder overhead
/// would show.
#[inline]
fn fake_request(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..8 {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
    }
    x
}

/// One request through the event loop's trace hooks: one `begin` at
/// admission, then the queue-wait and execute spans.
#[inline]
fn traced_request(seed: u64, rec: &TraceRecorder, ctx: Option<&TraceContext>) -> u64 {
    let t0 = rec.begin(ctx);
    let out = fake_request(seed);
    rec.span(ctx, Stage::QueueWait, 1, 0, t0);
    rec.span(ctx, Stage::Execute, 1, seed & 0xff, t0);
    out
}

fn measure<F: FnMut(u64) -> u64>(iters: u64, mut f: F) -> Duration {
    let start = Instant::now();
    for i in 0..iters {
        black_box(f(i));
    }
    start.elapsed()
}

fn bench_trace_overhead(c: &mut Criterion) {
    let ctx = TraceContext::sampled(0xbeef);
    let mut group = c.benchmark_group("trace_overhead");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));

    group.bench_function("baseline", |b| {
        b.iter_custom(|iters| measure(iters, fake_request))
    });

    let off = TraceRecorder::Disabled;
    group.bench_function("disabled", |b| {
        b.iter_custom(|iters| measure(iters, |i| traced_request(i, &off, Some(&ctx))))
    });

    let on = TraceRecorder::enabled(Flight::new("bench"));
    group.bench_function("untraced", |b| {
        b.iter_custom(|iters| measure(iters, |i| traced_request(i, &on, None)))
    });

    group.bench_function("enabled", |b| {
        b.iter_custom(|iters| measure(iters, |i| traced_request(i, &on, Some(&ctx))))
    });
    group.finish();

    // The zero-cost claim as one number: per-op disabled-chain cost
    // minus per-op baseline cost, over the same long burst back to
    // back. Noise can push it slightly negative; a sustained positive
    // trend means the disabled path grew a real cost.
    const BURST: u64 = 2_000_000;
    let base = measure(BURST, fake_request);
    let disabled = measure(BURST, |i| traced_request(i, &off, Some(&ctx)));
    let delta_ns = (disabled.as_nanos() as f64 - base.as_nanos() as f64) / BURST as f64;
    c.report_gauge("trace_overhead/disabled_minus_baseline", delta_ns, "ns");
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
