//! Lazy snapshot iteration vs. eager materialization, across every map
//! backend through the generic registry.
//!
//! Before the trait redesign, range reads went through APIs like
//! `range_to_vec` that clone the whole window into a `Vec` before the
//! caller sees the first entry. `Snapshot::range` iterates the
//! persistent tree directly: `lazy_range` measures that, `materialize`
//! measures the collect-then-scan pattern it replaces, and `lazy_first_10`
//! shows the real payoff — early exit pays only for what it consumes.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_concurrent::registry::{for_each_map_backend, MapBackendDriver};
use pathcopy_core::api::{ConcurrentMap, MapSnapshot, Snapshottable};

const PREFILL: i64 = 20_000;
const WINDOW: std::ops::Range<i64> = 5_000..15_000;

struct ScanDriver<'a> {
    criterion: &'a mut Criterion,
}

impl MapBackendDriver for ScanDriver<'_> {
    fn drive<M>(&mut self, name: &str, make: fn() -> M)
    where
        M: ConcurrentMap<i64, i64> + Snapshottable,
        M::Snapshot: MapSnapshot<i64, i64>,
    {
        let map = make();
        for k in 0..PREFILL {
            map.insert(k, k * 2);
        }
        let snap = Snapshottable::snapshot(&map);

        let mut group = self.criterion.benchmark_group("snapshot_scan");
        group.sample_size(10);
        group.measurement_time(Duration::from_millis(800));
        group.warm_up_time(Duration::from_millis(150));

        group.bench_function(BenchmarkId::new(name, "lazy_range"), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for (k, v) in snap.range(WINDOW) {
                    acc += *k + *v;
                }
                black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new(name, "materialize"), |b| {
            b.iter(|| {
                // The pre-redesign pattern: copy the window out first.
                let window: Vec<(i64, i64)> = snap.range(WINDOW).map(|(k, v)| (*k, *v)).collect();
                let mut acc = 0i64;
                for (k, v) in &window {
                    acc += k + v;
                }
                black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new(name, "lazy_first_10"), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for (k, _) in snap.range(WINDOW).take(10) {
                    acc += *k;
                }
                black_box(acc)
            })
        });
        group.finish();
    }
}

fn bench_snapshot_scan(c: &mut Criterion) {
    for_each_map_backend(&mut ScanDriver { criterion: c });
}

criterion_group!(benches, bench_snapshot_scan);
criterion_main!(benches);
