//! E6–E8 (Batch row): throughput of the UC treap on the §4.1 Batch
//! workload at several thread counts, as a Criterion throughput bench.
//! The full paper-scale table comes from the `paper_tables` binary; this
//! bench is the fast regression guard.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pathcopy_bench::measure::run_concurrent;
use pathcopy_bench::sets::prefill_treap;
use pathcopy_concurrent::TreapSet;
use pathcopy_workloads::BatchWorkload;

fn bench_batch(c: &mut Criterion) {
    let workload = BatchWorkload::generate(4, 50_000, 10_000, 42);
    let prefill = prefill_treap(&workload.prefill);

    let mut group = c.benchmark_group("batch_workload");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for threads in [1usize, 2, 4] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("uc_treap", threads), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let set = TreapSet::from_version(prefill.clone());
                    let mut streams = workload.streams();
                    streams.truncate(threads);
                    let start = Instant::now();
                    let ops = run_concurrent(&set, streams, Duration::from_millis(80));
                    // Normalize: report time per operation.
                    total += start.elapsed() / (ops.max(1) as u32);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
