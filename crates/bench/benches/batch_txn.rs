//! Cost of atomic batch transactions versus their shard fan-out.
//!
//! The related scaling literature (slim/fat-tree scaling limits) asks
//! how composite-operation cost grows with fan-out; here the analogous
//! question is how a `transact` batch's cost grows with the number of
//! shards it spans. Fixed batch size (32 ops), varying spread:
//!
//! * `span/1` — all keys forced into one shard: the lock-free CAS fast
//!   path, one root install for the whole batch.
//! * `span/k` — keys spread across the map's shards: ordered commit
//!   locks + freeze/install over ~k roots.
//! * `per_key_baseline` — the same 32 inserts as 32 separate per-key
//!   ops (no atomicity): what the batch's atomicity actually costs.
//!
//! Run `BENCH_JSON=out.jsonl cargo bench --bench batch_txn` to capture
//! machine-readable medians (CI uploads these as `BENCH_ci.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_concurrent::{BatchOp, ShardedTreapMap};

const BATCH_OPS: u64 = 32;
const PREFILL: u64 = 1 << 14;

/// Builds a map prefilled with `PREFILL` keys spread over all shards.
fn prefilled(shards: usize) -> ShardedTreapMap<u64, u64> {
    let m = ShardedTreapMap::with_shards(shards);
    for k in 0..PREFILL {
        m.insert(k, k);
    }
    m
}

/// Keys guaranteed to land in one shard: probe keys until `BATCH_OPS` of
/// them hash to the shard of `0`.
fn single_shard_keys(m: &ShardedTreapMap<u64, u64>) -> Vec<u64> {
    let target = m.snapshot_shard_of(&0);
    let mut keys = Vec::with_capacity(BATCH_OPS as usize);
    let mut k = 0u64;
    while keys.len() < BATCH_OPS as usize {
        // A key is in shard(0) iff inserting it there shows up in that
        // shard's snapshot; cheaper: compare snapshot identity of shards.
        if std::ptr::eq(
            std::sync::Arc::as_ptr(&m.snapshot_shard_of(&k)),
            std::sync::Arc::as_ptr(&target),
        ) {
            keys.push(k);
        }
        k += 1;
    }
    keys
}

fn bench_batch_span(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_txn");
    g.sample_size(10);

    for shards in [1usize, 4, 16] {
        let m = prefilled(shards);
        // Spread keys: strided over the whole key range, touching up to
        // `shards` distinct shards.
        let spread: Vec<u64> = (0..BATCH_OPS).map(|i| i * (PREFILL / BATCH_OPS)).collect();
        g.bench_function(BenchmarkId::new("spread", shards), |b| {
            let mut r = 0u64;
            b.iter(|| {
                r += 1;
                let batch: Vec<_> = spread.iter().map(|&k| BatchOp::Insert(k, r)).collect();
                m.transact(&batch)
            });
        });

        let pinned = single_shard_keys(&m);
        g.bench_function(BenchmarkId::new("single_shard", shards), |b| {
            let mut r = 0u64;
            b.iter(|| {
                r += 1;
                let batch: Vec<_> = pinned.iter().map(|&k| BatchOp::Insert(k, r)).collect();
                m.transact(&batch)
            });
        });

        g.bench_function(BenchmarkId::new("per_key_baseline", shards), |b| {
            let mut r = 0u64;
            b.iter(|| {
                r += 1;
                for &k in &spread {
                    m.insert(k, r);
                }
            });
        });
    }
    g.finish();
}

fn bench_batch_vs_readers(c: &mut Criterion) {
    // Transactions while a reader thread takes coherent cuts: measures
    // the freeze window's interference with snapshot_all.
    let mut g = c.benchmark_group("batch_txn_with_reader");
    g.sample_size(10);

    let m = prefilled(16);
    let spread: Vec<u64> = (0..BATCH_OPS).map(|i| i * (PREFILL / BATCH_OPS)).collect();
    g.bench_function("spread_16_shards", |b| {
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let m_ref = &m;
            let stop_ref = &stop;
            s.spawn(move || {
                while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                    criterion::black_box(m_ref.snapshot_all().len());
                }
            });
            let mut r = 0u64;
            b.iter(|| {
                r += 1;
                let batch: Vec<_> = spread.iter().map(|&k| BatchOp::Insert(k, r)).collect();
                m.transact(&batch)
            });
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_batch_span, bench_batch_vs_readers);
criterion_main!(benches);
