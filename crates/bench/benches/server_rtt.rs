//! Round-trip cost of the serving layer: framed request/response over a
//! loopback socket against an in-process server, per backend.
//!
//! This measures what the network front-end adds on top of the engine:
//! `get`/`insert` are one frame each way, `batch16` amortizes sixteen
//! ops over one round trip (mapped onto `transact` on the sharded
//! backend), and `snapshot_scan` pins a version, pages its first 100
//! entries, and releases it — the serving pattern the O(1)-snapshot
//! claim enables. The `get_x8_serial`/`get_x8_pipelined` pair isolates
//! what the proto-v3 correlation id buys: the same eight lookups issued
//! one round trip at a time versus submitted as one window of tickets —
//! the pipelined series pays roughly one round trip of latency for all
//! eight.
//!
//! Per backend, the bench also emits a `server_rtt/get_p99/<backend>`
//! **gauge**: the 99th-percentile get round trip over a fixed burst,
//! recorded with the same log-bucketed histogram the server's own
//! stage tracing uses, so tail regressions show in the CI trend even
//! when the median holds.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_concurrent::BatchOp;
use pathcopy_metrics::LatencyHistogram;
use pathcopy_server::{backend, Client, Request, Response, ServerConfig};

const PREFILL: i64 = 10_000;
const P99_BURST: u32 = 1_000;

fn bench_server_rtt(c: &mut Criterion) {
    let mut gauges: Vec<(String, f64)> = Vec::new();
    let mut group = c.benchmark_group("server_rtt");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(800));

    for name in ["sharded_map_8", "treap_map"] {
        let server = pathcopy_server::spawn(
            backend::by_name(name).expect("registered backend"),
            ServerConfig::with_workers(2),
        )
        .expect("bind ephemeral loopback port");
        let mut client = Client::connect(server.addr()).expect("connect");
        for chunk in (0..PREFILL).collect::<Vec<_>>().chunks(1000) {
            let ops: Vec<BatchOp<i64, i64>> =
                chunk.iter().map(|&k| BatchOp::Insert(k, k)).collect();
            client.batch(&ops).expect("prefill");
        }

        let mut key = 0i64;
        group.bench_function(BenchmarkId::new("get", name), |b| {
            b.iter(|| {
                key = (key + 1) % PREFILL;
                client.get(key).expect("get")
            })
        });

        let mut key = 0i64;
        group.bench_function(BenchmarkId::new("get_x8_serial", name), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for _ in 0..8 {
                    key = (key + 1) % PREFILL;
                    if client.get(key).expect("get").is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });

        let mut key = 0i64;
        group.bench_function(BenchmarkId::new("get_x8_pipelined", name), |b| {
            let session = client.session();
            b.iter(|| {
                let tickets: Vec<_> = (0..8)
                    .map(|_| {
                        key = (key + 1) % PREFILL;
                        session.submit(&Request::Get { key }).expect("submit")
                    })
                    .collect();
                let mut hits = 0usize;
                for ticket in tickets {
                    if let Response::Got(Some(_)) = ticket.wait().expect("get") {
                        hits += 1;
                    }
                }
                hits
            })
        });

        let mut key = 0i64;
        group.bench_function(BenchmarkId::new("insert", name), |b| {
            b.iter(|| {
                key = (key + 1) % PREFILL;
                client.insert(key, key).expect("insert")
            })
        });

        let batch: Vec<BatchOp<i64, i64>> = (0..16)
            .map(|i| BatchOp::Insert(i * (PREFILL / 16), -i))
            .collect();
        group.bench_function(BenchmarkId::new("batch16", name), |b| {
            b.iter(|| client.batch(&batch).expect("batch"))
        });

        group.bench_function(BenchmarkId::new("snapshot_scan100", name), |b| {
            b.iter(|| {
                let snap = client.snapshot().expect("snapshot");
                let (page, _) = client.range(Some(snap), .., 100).expect("range");
                client.release(snap).expect("release");
                page.len()
            })
        });

        // A fixed warm burst of gets into a histogram: the p99 gauge
        // tracks tail latency in the trend artifact, where the median
        // series above can't see a regression confined to the tail.
        let rtt = LatencyHistogram::new();
        for i in 0..P99_BURST {
            let k = i64::from(i) % PREFILL;
            let t0 = Instant::now();
            client.get(k).expect("get");
            rtt.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        gauges.push((
            format!("server_rtt/get_p99/{name}"),
            rtt.snapshot().value_at_percentile(99.0) as f64,
        ));

        drop(client);
        server.shutdown();
    }
    group.finish();
    for (id, p99) in gauges {
        c.report_gauge(&id, p99, "ns");
    }
}

criterion_group!(benches, bench_server_rtt);
criterion_main!(benches);
