//! Costs of the `Root_Ptr` register itself: snapshot loads, uncontended
//! and contended CAS.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathcopy_core::VersionCell;

fn bench_load(c: &mut Criterion) {
    let cell = VersionCell::new(0u64);
    c.bench_function("version_cell/load", |b| b.iter(|| black_box(*cell.load())));
}

fn bench_uncontended_cas(c: &mut Criterion) {
    let cell = VersionCell::new(0u64);
    c.bench_function("version_cell/cas_uncontended", |b| {
        b.iter(|| {
            let cur = cell.load();
            cell.compare_exchange(&cur, Arc::new(*cur + 1)).unwrap();
        })
    });
}

fn bench_contended_cas(c: &mut Criterion) {
    let mut group = c.benchmark_group("version_cell/cas_contended");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.bench_function("2_threads", |b| {
        b.iter_custom(|iters| {
            let cell = VersionCell::new(0u64);
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        for _ in 0..iters {
                            let mut cur = cell.load();
                            loop {
                                match cell.compare_exchange(&cur, Arc::new(*cur + 1)) {
                                    Ok(()) => break,
                                    Err(e) => cur = e.current,
                                }
                            }
                        }
                    });
                }
            });
            start.elapsed() / 2
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_load,
    bench_uncontended_cas,
    bench_contended_cas
);
criterion_main!(benches);
