//! E6–E8 (Random row): throughput of the UC treap on the §4.2 Random
//! workload (half the updates are no-ops that skip the CAS).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_bench::measure::run_concurrent;
use pathcopy_bench::sets::prefill_treap;
use pathcopy_concurrent::TreapSet;
use pathcopy_workloads::{RandomStream, RandomWorkload};

fn bench_random(c: &mut Criterion) {
    let workload = RandomWorkload::generate(4, 50_000, 50_000, 42);
    let prefill = prefill_treap(&workload.prefill);

    let mut group = c.benchmark_group("random_workload");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for threads in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("uc_treap", threads), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for i in 0..iters {
                    let set = TreapSet::from_version(prefill.clone());
                    let streams: Vec<RandomStream> = (0..threads)
                        .map(|t| RandomStream::new(50_000, 1000 + i * 17 + t as u64))
                        .collect();
                    let start = Instant::now();
                    let ops = run_concurrent(&set, streams, Duration::from_millis(80));
                    total += start.elapsed() / (ops.max(1) as u32);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_random);
criterion_main!(benches);
