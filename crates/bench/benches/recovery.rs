//! Durable-log recovery cost as the checkpoint cadence varies.
//!
//! Setup per cadence: a 5 000-key map is checkpointed and then driven
//! through 256 published epochs of 32-entry diffs, checkpointing every
//! `checkpoint_every` epochs — exactly the record mix `FeedPersister`
//! produces. The timings then measure the cold paths a restart pays:
//!
//! * `open_replay` — [`EpochLog::open`] (segment scan + chain
//!   validation) plus [`replay`](EpochLog::replay) of the head state.
//!   Denser checkpoints mean a shorter diff tail to replay but more
//!   checkpoint bytes to scan past on open.
//! * `restore_mid` — [`restore_epoch`](EpochLog::restore_epoch) at the
//!   halfway epoch: seek to the newest checkpoint at or below the
//!   target, then roll diffs forward.
//!
//! The printed table shows the storage side of the same trade:
//! segments and total bytes grow with checkpoint density while the
//! recovery tail shrinks.
//!
//! Run `BENCH_JSON=out.jsonl cargo bench --bench recovery` to capture
//! machine-readable medians (CI uploads these as `BENCH_ci.json`).

use std::path::PathBuf;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathcopy_bench::table::Series;
use pathcopy_core::DiffEntry;
use pathcopy_durable::{EpochLog, LogConfig};
use pathcopy_server::backend::{ServeBackend, ShardedServe};

const MAP_SIZE: i64 = 5_000;
const EPOCHS: u64 = 256;
const DIFF_ENTRIES: i64 = 32;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pathcopy-bench-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a log with the record mix the feed persister would produce:
/// a full checkpoint every `every` epochs, small diffs in between.
fn build_log(dir: &std::path::Path, every: u64) -> EpochLog {
    let (log, _) = EpochLog::open(
        dir,
        LogConfig {
            fsync: false, // measure record/replay cost, not the disk
            max_total_bytes: u64::MAX,
            ..LogConfig::default()
        },
    )
    .expect("open bench log");
    let map = ShardedServe::with_shards(8);
    for k in 0..MAP_SIZE {
        map.insert(k, k);
    }
    let mut last_checkpoint = 0u64;
    for epoch in 1..=EPOCHS {
        let mut diff = Vec::with_capacity(DIFF_ENTRIES as usize);
        for i in 0..DIFF_ENTRIES {
            // Deterministic churn over a rotating key window.
            let k = (epoch as i64 * DIFF_ENTRIES + i) % MAP_SIZE;
            let old = map.insert(k, epoch as i64).expect("key pre-seeded");
            diff.push(DiffEntry::Changed(k, old, epoch as i64));
        }
        if last_checkpoint == 0 || epoch - last_checkpoint >= every {
            log.append_checkpoint(epoch, map.snapshot().as_ref())
                .expect("checkpoint");
            last_checkpoint = epoch;
        } else {
            log.append_diff(epoch, &diff).expect("diff");
        }
    }
    log
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(800));

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for every in [8u64, 64, 256] {
        let dir = scratch(&format!("every{every}"));
        let log = build_log(&dir, every);
        let (segments, total_bytes, head) = (log.segment_count(), log.total_bytes(), log.head());
        assert_eq!(head, EPOCHS, "all epochs persisted");
        drop(log);

        group.bench_function(BenchmarkId::new("open_replay", every), |b| {
            b.iter(|| {
                let (log, recovered) = EpochLog::open(&dir, LogConfig::default()).expect("reopen");
                assert_eq!(recovered.truncated_bytes, 0, "clean shutdown");
                let (state, head) = log.replay().expect("replay");
                assert_eq!(head, EPOCHS);
                state.len()
            })
        });
        let (log, _) = EpochLog::open(&dir, LogConfig::default()).expect("reopen for restore");
        group.bench_function(BenchmarkId::new("restore_mid", every), |b| {
            b.iter(|| log.restore_epoch(EPOCHS / 2).expect("restore").len())
        });
        drop(log);

        rows.push(vec![
            every as f64,
            segments as f64,
            total_bytes as f64,
            (EPOCHS / every.max(1)).max(1) as f64,
        ]);
        std::fs::remove_dir_all(&dir).expect("scratch cleanup");
    }
    group.finish();

    let table = Series {
        title: format!(
            "recovery log shape ({MAP_SIZE}-key map, {EPOCHS} epochs, {DIFF_ENTRIES}-entry diffs)"
        ),
        columns: vec![
            "checkpoint_every".into(),
            "segments".into(),
            "total_bytes".into(),
            "checkpoints".into(),
        ],
        rows,
    };
    print!("{}", table.render());
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
