//! Push fan-out propagation cost through a relay tier.
//!
//! Setup: a primary serving a seeded map, one relay subscribed to it,
//! and one leaf subscribed to the relay — the smallest tree that
//! exercises end-to-end epoch numbers across a hop. Each iteration
//! writes one key, publishes, and pumps the chain until the leaf has
//! applied the new epoch; the measured time is the full
//! publish → push → relay re-push → leaf-apply propagation, including
//! the subscriber-side pump.
//!
//! Besides the timing series, the bench records two **gauges** over a
//! fixed post-warm-up burst — `fanout/replica_lag` (mean propagation
//! lag in nanoseconds) and `fanout/replica_lag_p99` (its tail) — so
//! the CI trend artifact tracks replication lag as first-class series
//! next to the closure timings. It also asserts the transport claim:
//! after the run, the
//! leaf must have performed zero repair `PullDiff`s — every epoch
//! arrived as a push.
//!
//! Run `BENCH_JSON=out.jsonl cargo bench --bench fanout` to capture
//! machine-readable medians and the gauge line.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use pathcopy_concurrent::ShardedTreapMap;
use pathcopy_metrics::LatencyHistogram;
use pathcopy_replica::PushReplica;
use pathcopy_server::backend::ShardedServe;
use pathcopy_server::{backend, Client, ServerConfig};

const SEED_KEYS: i64 = 1_024;
const LAG_ROUNDS: u32 = 32;

/// Pumps one node until it has applied `target` (bounded; a push chain
/// that stalls is a bug, not a slow run).
fn pump_to(node: &mut PushReplica, target: u64) {
    for _ in 0..1_000 {
        if node.applied_epoch() >= target {
            return;
        }
        node.pump(Duration::from_millis(20)).expect("pump");
    }
    panic!(
        "node stalled at epoch {} below target {target}",
        node.applied_epoch()
    );
}

fn bench_fanout(c: &mut Criterion) {
    let map: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(8);
    for k in 0..SEED_KEYS {
        map.insert(k, k);
    }
    let primary = pathcopy_server::spawn(
        Box::new(ShardedServe::new(map)),
        ServerConfig::with_workers(4),
    )
    .expect("bind ephemeral loopback port");
    let mut writer = Client::connect(primary.addr()).expect("writer");
    writer.publish().expect("seed epoch");

    // primary → relay → leaf: the relay both applies pushes and
    // re-serves the feed with the primary's epoch numbers.
    let mut relay =
        PushReplica::connect(primary.addr(), backend::by_name("sharded_map_8").unwrap())
            .expect("relay");
    let relay_addr = relay
        .serve_relay(ServerConfig::with_workers(2))
        .expect("serve relay");
    let mut leaf =
        PushReplica::connect(relay_addr, backend::by_name("sharded_map_8").unwrap()).expect("leaf");

    let mut group = c.benchmark_group("fanout");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(800));

    let mut tick: i64 = 0;
    group.bench_function("push_propagation", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                tick += 1;
                writer.insert(tick % SEED_KEYS, tick).expect("write");
                let start = Instant::now();
                let epoch = writer.publish().expect("publish");
                pump_to(&mut relay, epoch);
                pump_to(&mut leaf, epoch);
                total += start.elapsed();
            }
            total
        })
    });
    group.finish();

    // The lag gauges: publish-to-leaf-applied latency over a fixed
    // burst, measured after the timing runs warmed every path. The mean
    // keeps its historical trend id; the p99 (from the same histogram
    // the server's own tracing uses) catches tail regressions the mean
    // smooths over.
    let lag_hist = LatencyHistogram::new();
    for round in 0..LAG_ROUNDS {
        writer
            .insert(i64::from(round) % SEED_KEYS, i64::from(round))
            .expect("write");
        let start = Instant::now();
        let epoch = writer.publish().expect("publish");
        pump_to(&mut relay, epoch);
        pump_to(&mut leaf, epoch);
        lag_hist.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    let lag = lag_hist.snapshot();
    c.report_gauge("fanout/replica_lag", lag.mean(), "ns");
    c.report_gauge(
        "fanout/replica_lag_p99",
        lag.value_at_percentile(99.0) as f64,
        "ns",
    );

    // The transport claim behind the numbers: everything after each
    // node's single bootstrap arrived as a push, never a repair pull.
    for node in [&leaf, &relay] {
        assert_eq!(
            node.pull_stats().diff_pulls,
            0,
            "push path must carry all epochs"
        );
        assert!(node.push_stats().pushes_applied > 0);
    }
    drop(leaf);
    drop(relay);
    primary.shutdown();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
