//! End-to-end distributed tracing across a relay tree.
//!
//! Stands up the full write path in one process — durable primary →
//! relay → leaf — with a flight recorder on every node, publishes a
//! handful of epochs under sampled trace contexts, and then collects
//! each node's `TraceDump` over the wire and renders one epoch's
//! complete journey:
//!
//! * **primary** — queue wait, execute (with the durable
//!   append+fsync span nested inside it), and the reply write/flush;
//! * **relay** — the push-apply span, parented under the primary's
//!   execute span by the trace context the push frame carried;
//! * **leaf** — its own push-apply span, parented under the relay's.
//!
//! One trace id stitches all three nodes; the epoch number on each
//! span is the cross-node join key. A 1 ms slow-request threshold is
//! armed on every recorder, so any publish that crosses it has its
//! span chain pinned past ring eviction — the flight-recorder answer
//! to "what was that one slow request doing?".
//!
//! ```text
//! cargo run --release --example trace_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use pathcopy_durable::{EpochLog, FeedPersister, LogConfig};
use pathcopy_replica::PushReplica;
use pathcopy_server::{
    backend, render_trace, trace_ids, Client, FeedSink, Flight, ServerConfig, TraceContext,
};

fn main() {
    // ── A durable primary with a flight recorder ────────────────────
    let dir = std::env::temp_dir().join(format!("pathcopy-trace-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (log, _) = EpochLog::open(&dir, LogConfig::default()).expect("create log");
    let persister = FeedPersister::new(Arc::new(log));
    let primary_flight = Flight::new("primary");
    primary_flight.set_slow_threshold(Some(Duration::from_millis(1)));
    persister.attach_flight(Arc::clone(&primary_flight));
    let mut config = ServerConfig::builder()
        .workers(2)
        .trace(Arc::clone(&primary_flight))
        .build();
    config.feed_sink = Some(Arc::clone(&persister) as Arc<dyn FeedSink>);
    let primary =
        pathcopy_server::spawn(backend::by_name("sharded_map_8").expect("backend"), config)
            .expect("bind primary");

    // ── The chain: relay and leaf, each with its own recorder ───────
    let mut relay = PushReplica::connect(
        primary.addr(),
        backend::by_name("sharded_map_8").expect("backend"),
    )
    .expect("stand up relay");
    let relay_flight = Flight::new("relay");
    relay_flight.set_slow_threshold(Some(Duration::from_millis(1)));
    relay.set_trace(relay_flight);
    relay
        .serve_relay(ServerConfig::with_workers(2))
        .expect("bind relay");

    let mut leaf = PushReplica::connect(
        relay.relay_addr().expect("relay address"),
        backend::by_name("sharded_map_8").expect("backend"),
    )
    .expect("stand up leaf");
    let leaf_flight = Flight::new("leaf");
    leaf_flight.set_slow_threshold(Some(Duration::from_millis(1)));
    leaf.set_trace(leaf_flight);
    leaf.serve_relay(ServerConfig::with_workers(2))
        .expect("bind leaf");

    // ── Traced publishes: one sampled context per epoch ─────────────
    let mut writer = Client::connect(primary.addr()).expect("connect writer");
    for k in 0..256i64 {
        writer.insert(k, k * 3).expect("seed insert");
    }
    for round in 1..=8u64 {
        writer
            .insert(round as i64, -(round as i64))
            .expect("insert");
        let ctx = TraceContext::sampled(0x7ace_0000 + round);
        let epoch = writer.publish_traced(&ctx).expect("traced publish");
        while relay.applied_epoch() < epoch {
            relay.pump(Duration::from_millis(50)).expect("relay pump");
        }
        while leaf.applied_epoch() < epoch {
            leaf.pump(Duration::from_millis(50)).expect("leaf pump");
        }
    }

    // ── Collect and stitch, over the wire like an operator would ────
    let mut dumps = Vec::new();
    for addr in [
        primary.addr(),
        relay.relay_addr().expect("relay address"),
        leaf.relay_addr().expect("leaf address"),
    ] {
        let mut c = Client::connect(addr).expect("trace connect");
        dumps.push(c.trace_dump().expect("trace dump"));
    }
    for (node, spans) in &dumps {
        println!("node {node}: {} recorded span(s)", spans.len());
    }

    let ids = trace_ids(&dumps);
    println!(
        "{} stitched trace(s); rendering the best-covered one:\n",
        ids.len()
    );
    let id = ids.first().expect("at least one trace");
    print!("{}", render_trace(*id, &dumps));

    primary.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
