//! Fig. 1 made executable: path copying shares almost everything between
//! versions, and a retrying process finds almost all of its path already
//! cached.
//!
//! ```text
//! cargo run --release --example sharing_demo
//! ```

use path_copying::pathcopy_trees::{sharing, TreapMap};

fn main() {
    // The paper's example tree (keys 10..70, shaped by explicit
    // priorities to match Fig. 1):
    //
    //              40
    //          30      50
    //        20           60
    //      10                70
    let mut v0: TreapMap<i64, ()> = TreapMap::new();
    for (k, prio) in [
        (40, 700u64),
        (30, 600),
        (50, 600),
        (20, 500),
        (60, 500),
        (10, 400),
        (70, 400),
    ] {
        v0 = v0.insert_with_priority(k, (), prio).0;
    }
    v0.check_invariants();

    // Process P inserts 5: it traverses 40 -> 30 -> 20 -> 10 and builds a
    // new version copying exactly that path.
    let (v_p, _) = v0.insert_with_priority(5, (), 300);
    let stats = sharing::sharing_stats(&v0, &v_p);
    println!(
        "insert(5): old {} nodes, new {} nodes",
        stats.old_nodes, stats.new_nodes
    );
    println!(
        "  shared {}  copied {}  retired {}",
        stats.shared, stats.fresh, stats.retired
    );
    assert_eq!(stats.shared, 3); // 50, 60, 70 are shared with v0

    // Sequential cost (paper §3): insert(5) loads 4 uncached nodes, then
    // insert(75) loads 4 more of which node 40 is already cached: 7 total.
    let seq_loads = v0.path_len(&5) + (v_p.path_len(&75) - 1);
    println!("sequential uncached loads for insert(5); insert(75): {seq_loads} (paper: 7)");

    // Concurrent: Q also read v0 and traversed to 70, caching its path.
    // P's CAS wins; Q retries on v_p. How many nodes on Q's new path did
    // P create? Only the shared prefix that P copied — here, the root.
    let uncached = sharing::uncached_on_retry(&v0, &v_p, &75);
    println!(
        "Q's retry on P's version: {uncached} uncached load(s) (paper: 1) — the retry is nearly free"
    );
    assert_eq!(uncached, 1);

    // The same effect at realistic scale: a 65k-key treap, random winner
    // and retry keys — expected uncached-on-retry stays near 2 (Fig. 5).
    let big: TreapMap<i64, i64> = (0..65_536).map(|k| (k, k)).collect();
    let mut total = 0usize;
    let trials = 1_000;
    let mut x = 42u64;
    for _ in 0..trials {
        x = path_copying::pathcopy_trees::hash::splitmix64(x);
        let winner = (x % 65_536) as i64;
        x = path_copying::pathcopy_trees::hash::splitmix64(x);
        let ours = (x % 65_536) as i64;
        let (after, _) = big.remove(&winner).unwrap().0.insert(winner, 0);
        total += sharing::uncached_on_retry(&big, &after, &ours);
    }
    println!(
        "65k-key treap, {} random winner/retry pairs: mean uncached on retry = {:.3} \
         (Appendix A bound: <= 2)",
        trials,
        total as f64 / trials as f64
    );
}
