//! Time-travel debugging: persistence means every committed version can
//! be retained and queried later — an audit log of the whole structure
//! for the price of O(log n) extra nodes per update.
//!
//! ```text
//! cargo run --release --example version_history
//! ```

use std::sync::Arc;

use path_copying::pathcopy_trees::TreapMap;
use path_copying::prelude::{PathCopyUc, Update};

/// A version id paired with the archived snapshot it names.
type ArchivedVersion = (u64, Arc<TreapMap<String, i64>>);

/// A keyed store that records every committed version.
struct VersionedStore {
    uc: PathCopyUc<TreapMap<String, i64>>,
    history: std::sync::Mutex<Vec<ArchivedVersion>>,
    next_version: std::sync::atomic::AtomicU64,
}

impl VersionedStore {
    fn new() -> Self {
        VersionedStore {
            uc: PathCopyUc::new(TreapMap::new()),
            history: std::sync::Mutex::new(Vec::new()),
            next_version: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Sets `key = value`, archiving the new version. Returns its id.
    fn set(&self, key: &str, value: i64) -> u64 {
        self.uc.update(|m| {
            let (next, _) = m.insert(key.to_string(), value);
            Update::Replace(next, ())
        });
        let snap = self.uc.snapshot();
        let id = self
            .next_version
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.history.lock().unwrap().push((id, snap));
        id
    }

    /// Reads `key` as of version `version` (the audit query).
    fn get_as_of(&self, key: &str, version: u64) -> Option<i64> {
        let history = self.history.lock().unwrap();
        let idx = history.partition_point(|(id, _)| *id <= version);
        let (_, snap) = history.get(idx.checked_sub(1)?)?;
        snap.get(&key.to_string()).copied()
    }

    fn latest(&self) -> Arc<TreapMap<String, i64>> {
        self.uc.snapshot()
    }
}

fn main() {
    let store = VersionedStore::new();

    let v1 = store.set("balance/alice", 100);
    let v2 = store.set("balance/bob", 50);
    let v3 = store.set("balance/alice", 70); // alice pays 30
    let v4 = store.set("balance/bob", 80); // bob receives 30

    println!("version history of balance/alice:");
    for v in [v1, v2, v3, v4] {
        println!(
            "  as of v{v}: alice={:?} bob={:?}",
            store.get_as_of("balance/alice", v),
            store.get_as_of("balance/bob", v)
        );
    }

    assert_eq!(store.get_as_of("balance/alice", v1), Some(100));
    assert_eq!(store.get_as_of("balance/alice", v3), Some(70));
    assert_eq!(store.get_as_of("balance/bob", v2), Some(50));
    assert_eq!(store.get_as_of("balance/bob", v4), Some(80));

    // The audit invariant: total money is conserved from v2 onward.
    for v in [v2, v3, v4] {
        let alice = store.get_as_of("balance/alice", v).unwrap_or(0);
        let bob = store.get_as_of("balance/bob", v).unwrap_or(0);
        assert!(
            alice + bob == 150 || v < v4 && alice + bob == 120,
            "v{v}: {alice} + {bob}"
        );
    }

    // Retained versions share structure: the memory cost of the history
    // is O(updates * log n), not O(updates * n).
    println!(
        "latest state: {:?}",
        store
            .latest()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
    );
    println!("4 versions retained; every query above hit a consistent point-in-time view");
}
