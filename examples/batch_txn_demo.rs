//! Atomic cross-shard batch transactions in action: a miniature bank.
//!
//! Accounts are hash-partitioned across 16 shards. Transfer threads move
//! money between random account pairs with a single `transact` batch —
//! debit and credit land in different shards, yet commit as one
//! linearizable unit. An auditor thread takes coherent `snapshot_all()`
//! cuts the whole time; because batches are atomic, every cut balances
//! to the initial total, down to the cent.
//!
//! ```text
//! cargo run --release --example batch_txn_demo
//! ```

use path_copying::prelude::{BatchOp, BatchResult, ShardedTreapMap, ShardedTreapSet};

const ACCOUNTS: u64 = 256;
const OPENING_BALANCE: i64 = 1_000;
const TRANSFER_THREADS: u64 = 4;
const TRANSFERS_PER_THREAD: u64 = 5_000;

fn main() {
    let bank: ShardedTreapMap<u64, i64> = ShardedTreapMap::with_shards(16);

    // Open every account in one atomic batch.
    let opening: Vec<_> = (0..ACCOUNTS)
        .map(|a| BatchOp::Insert(a, OPENING_BALANCE))
        .collect();
    bank.transact(&opening);
    let total = (ACCOUNTS as i64) * OPENING_BALANCE;
    println!("opened {ACCOUNTS} accounts, total balance {total}");

    let audits = std::sync::atomic::AtomicU64::new(0);
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Transfer threads: read both balances and move funds in ONE
        // batch — the read and both writes share a linearization point.
        let transfers: Vec<_> = (0..TRANSFER_THREADS)
            .map(|t| {
                let bank = &bank;
                s.spawn(move || {
                    // Each thread owns a disjoint slice of accounts (the
                    // point here is atomicity across *shards*, which
                    // hashing gives us for free; contended ownership is
                    // the Cas example further down).
                    let per = ACCOUNTS / TRANSFER_THREADS;
                    let base = t * per;
                    let mut balances = vec![OPENING_BALANCE; per as usize];
                    let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(t + 1);
                    for _ in 0..TRANSFERS_PER_THREAD {
                        x = path_copying::pathcopy_trees::hash::splitmix64(x);
                        let from = (x % per) as usize;
                        let to = ((x >> 32) % per) as usize;
                        if from == to {
                            continue;
                        }
                        let amount = (x % 97) as i64 + 1;
                        balances[from] -= amount;
                        balances[to] += amount;
                        // Debit and credit land in different shards with
                        // 15/16 probability, yet flip as one atomic unit:
                        // no auditor cut can ever see the money in flight.
                        bank.transact(&[
                            BatchOp::Insert(base + from as u64, balances[from]),
                            BatchOp::Insert(base + to as u64, balances[to]),
                        ]);
                    }
                })
            })
            .collect();

        // Auditor: coherent cuts must always balance.
        let bank = &bank;
        let done_ref = &done;
        let audits_ref = &audits;
        let auditor = s.spawn(move || {
            while !done_ref.load(std::sync::atomic::Ordering::Relaxed) {
                let cut = bank.snapshot_all();
                let sum: i64 = cut.iter().map(|(_, v)| *v).sum();
                assert_eq!(
                    sum,
                    total,
                    "torn transfer observed: books off by {}",
                    sum - total
                );
                audits_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });

        for h in transfers {
            h.join().expect("transfer thread panicked");
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        auditor.join().expect("auditor panicked");
    });

    let final_cut = bank.snapshot_all();
    let sum: i64 = final_cut.iter().map(|(_, v)| *v).sum();
    println!(
        "after {} transfers: total balance {sum} (audited {} coherent cuts)",
        TRANSFER_THREADS * TRANSFERS_PER_THREAD,
        audits.load(std::sync::atomic::Ordering::Relaxed)
    );
    assert_eq!(sum, total);

    let stats = bank.stats_snapshot();
    println!(
        "UC stats: {} CAS-loop ops, {} frozen installs (cross-shard commits), mean attempts {:.2}",
        stats.ops,
        stats.frozen_installs,
        stats.mean_attempts()
    );

    // Cas is per-op conditional: a failed comparison reports Cas(false)
    // without aborting the rest of the batch.
    let r = bank.transact(&[BatchOp::Get(0)]);
    let BatchResult::Got(Some(balance)) = r[0] else {
        unreachable!("account 0 exists")
    };
    let r = bank.transact(&[
        BatchOp::Cas {
            key: 0,
            expected: Some(balance),
            new: Some(balance),
        },
        BatchOp::Cas {
            key: 1,
            expected: Some(i64::MIN),
            new: Some(0),
        },
    ]);
    assert_eq!(r, vec![BatchResult::Cas(true), BatchResult::Cas(false)]);
    println!("per-op Cas semantics: {r:?}");

    // The set facade in one breath: atomic multi-key membership.
    let seen: ShardedTreapSet<u64> = ShardedTreapSet::with_shards(8);
    let fresh = seen.insert_batch(&[1, 2, 3, 2]);
    println!("set facade: insert_batch [1,2,3,2] -> {fresh:?}");
    assert_eq!(fresh, vec![true, true, true, false]);
}
