//! Sharded UC map demo: past the single-root ceiling.
//!
//! The paper's construction funnels every successful update through one
//! `Root_Ptr` CAS. This demo runs the same write-heavy workload against
//! the single-root `TreapMap` and a 16-shard `ShardedTreapMap`, prints
//! the throughputs side by side, and then takes a coherent cross-shard
//! snapshot while writers keep going.
//!
//! Run with: `cargo run --release --example sharded_demo`

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use path_copying::prelude::{ShardedTreapMap, TreapMap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 50_000;
const KEY_RANGE: i64 = 1 << 16;

fn next_key(rng: &mut SmallRng) -> i64 {
    rng.gen_range(0..KEY_RANGE)
}

fn run(label: &str, apply: impl Fn(i64, bool) + Sync) -> f64 {
    let seeds = AtomicU64::new(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let apply = &apply;
            let mut rng = SmallRng::seed_from_u64(seeds.fetch_add(1, Relaxed));
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let k = next_key(&mut rng);
                    apply(k, i % 2 == 0);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total_ops = (THREADS as u64 * OPS_PER_THREAD) as f64;
    let mops = total_ops / secs / 1e6;
    println!("  {label:<24} {mops:>8.2} Mops/s  ({THREADS} threads, write-only)");
    mops
}

fn main() {
    println!("== update throughput: single root vs sharded ==");
    let single: TreapMap<i64, u64> = TreapMap::new();
    let single_mops = run("single-root TreapMap", |k, ins| {
        if ins {
            single.insert(k, 1);
        } else {
            single.remove(&k);
        }
    });

    let sharded: ShardedTreapMap<i64, u64> = ShardedTreapMap::with_shards(16);
    let sharded_mops = run("16-shard ShardedTreapMap", |k, ins| {
        if ins {
            sharded.insert(k, 1);
        } else {
            sharded.remove(&k);
        }
    });
    println!("  speedup: {:.2}x", sharded_mops / single_mops);

    println!("\n== coherent snapshot_all under churn ==");
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let sharded = &sharded;
            let stop = &stop;
            let mut rng = SmallRng::seed_from_u64(t);
            s.spawn(move || {
                while !stop.load(Relaxed) {
                    let k = next_key(&mut rng);
                    sharded.insert(k, k as u64);
                }
            });
        }
        for round in 1..=3 {
            let start = Instant::now();
            let snap = sharded.snapshot_all();
            let took = start.elapsed();
            println!(
                "  cut {round}: {} entries across {} shards in {:?} (writers still running)",
                snap.len(),
                snap.shard_count(),
                took
            );
            std::thread::sleep(Duration::from_millis(30));
        }
        stop.store(true, Relaxed);
    });

    // The snapshot is a plain persistent value: ordered iteration works
    // even though the live map is hash-partitioned.
    let snap = sharded.snapshot_all();
    let sorted = snap.to_sorted_vec();
    assert!(sorted.windows(2).all(|w| w[0].0 < w[1].0));
    println!(
        "\nfinal snapshot: {} keys, globally sorted merge OK",
        sorted.len()
    );
}
