//! Per-stage latency tracing, scraped over the wire.
//!
//! Spawns a server with metrics on (the default), drives a small mixed
//! workload plus a push replica fed from a durable primary-less feed,
//! and then scrapes `Request::Metrics` like an external collector
//! would. The scrape decomposes every request's wall time into the
//! three stages the event loop can see:
//!
//! * **queue wait** — decode→dispatch: time spent parked behind the
//!   worker pool. Rises when workers saturate.
//! * **execute** — time inside the backend (the path-copying map).
//!   Rises when the data structure itself slows down.
//! * **write/flush** — reply encoded→last byte handed to the kernel.
//!   Rises when replies outpace the sockets.
//!
//! Each stage is split by request tag, so a `Batch` regression can't
//! hide inside the `Get` noise. The push replica contributes two more
//! histograms through the same scrape: push-apply nanoseconds and the
//! end-to-end epoch lag (in epochs) measured from the watermark already
//! on the wire.
//!
//! ```text
//! cargo run --release --example metrics_demo
//! ```

use std::time::Duration;

use pathcopy_metrics::Stage;
use pathcopy_replica::PushReplica;
use pathcopy_server::{backend, render_text, Client, ServerConfig};

const OPS: i64 = 2_000;

fn main() {
    // Metrics are on by default; `.metrics(false)` turns every recorder
    // into a no-op for latency-critical deployments.
    let server = pathcopy_server::spawn(
        backend::by_name("sharded_map_8").expect("backend"),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");

    // A replica subscribed to the feed: its push-apply and epoch-lag
    // histograms join the primary's scrape via its relay endpoint.
    let mut replica = PushReplica::connect(
        server.addr(),
        backend::by_name("sharded_map_8").expect("backend"),
    )
    .expect("stand up replica");

    // A mixed workload: point ops, batches, and published epochs.
    for k in 0..OPS {
        c.insert(k, k * 7).expect("insert");
        if k % 3 == 0 {
            c.get(k / 2).expect("get");
        }
        if k % 128 == 0 {
            use pathcopy_concurrent::BatchOp;
            c.batch(&[BatchOp::Insert(-k, k), BatchOp::Get(k), BatchOp::Remove(-k)])
                .expect("batch");
            c.publish().expect("publish");
            while !matches!(
                replica.pump(Duration::from_millis(100)),
                Ok(pathcopy_replica::PushOutcome::Pushed { .. })
            ) {}
        }
    }

    // Scrape exactly like an external collector: one request, every
    // stage and tag the server has seen, in Prometheus text format.
    let rows = c.metrics().expect("metrics scrape");
    println!("{}", render_text(&rows));

    // The same rows are plain structs, so in-process consumers can
    // compute their own views; here, the queue-wait/execute split per
    // tag — the first thing to look at when round trips regress.
    println!("stage split (mean ns per request tag):");
    for row in &rows {
        let stage = Stage::from_u8(row.stage).map_or("?", |s| s.as_str());
        if row.count == 0 || !matches!(row.stage, 1 | 2) {
            continue;
        }
        println!(
            "  {:<22} {:<10} mean={:>8} p99={:>8}",
            stage,
            pathcopy_server::Request::tag_name(row.tag).unwrap_or("?"),
            row.sum / row.count,
            row.p99,
        );
    }

    // Replica-side histograms, read straight off the shared handle.
    let push = replica.metrics();
    let apply = push.push_apply_snapshot();
    let lag = push.epoch_lag_snapshot();
    println!(
        "replica: {} pushes applied, apply p99 = {} ns, worst epoch lag = {} epoch(s)",
        apply.count(),
        apply.value_at_percentile(99.0),
        lag.max(),
    );

    server.shutdown();
}
