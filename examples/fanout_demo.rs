//! Push fan-out as a relay tree: one primary, two relays, four leaves.
//!
//! Every published epoch leaves the primary exactly twice — once per
//! relay — no matter how many leaves hang off the tree; the relays
//! re-serve the same O(changes) diff downstream with the primary's
//! epoch numbers intact. The demo drives a writer through a few dozen
//! epochs, pumps the tree, and then prints the receipts:
//!
//! * the primary's wire egress next to the relays' combined egress —
//!   the fan-out happened downstream;
//! * the primary's gauges — two subscribers, one push per epoch each,
//!   zero demotions;
//! * per-leaf replication stats — every epoch arrived as a push
//!   (`repair diff_pulls = 0`);
//! * a session-consistent read: the writer's `SessionToken` watermark
//!   carried to a **leaf**, where `GetAt` waits for the epoch and
//!   returns the write — read-your-writes across two hops with no
//!   sticky routing.
//!
//! ```text
//! cargo run --release --example fanout_demo
//! ```

use std::time::Duration;

use pathcopy_replica::PushReplica;
use pathcopy_server::{backend, Client, ServerConfig, SessionToken};

const KEYS: i64 = 64;
const ROUNDS: u64 = 32;
const RELAYS: usize = 2;
const LEAVES: usize = 4;

/// Pumps one node until it has applied `target` (bounded — a stalled
/// push chain is a bug, not a slow run).
fn pump_to(node: &mut PushReplica, target: u64) {
    for _ in 0..1_000 {
        if node.applied_epoch() >= target {
            return;
        }
        node.pump(Duration::from_millis(20)).expect("pump");
    }
    panic!("node stalled below epoch {target}");
}

fn main() {
    let primary = pathcopy_server::spawn(
        backend::by_name("sharded_map_8").expect("registered backend"),
        ServerConfig::with_workers(4),
    )
    .expect("bind ephemeral loopback port");
    println!("primary: sharded_map_8 on {}", primary.addr());

    let mut writer = Client::connect(primary.addr()).expect("writer");
    for k in 0..KEYS {
        writer.insert(k, 0).expect("seed");
    }
    writer.publish().expect("epoch 1");

    // The tree: relays subscribe to the primary and re-serve the feed;
    // leaves subscribe round-robin to the relays and serve reads.
    let mut relays: Vec<PushReplica> = Vec::new();
    let mut relay_addrs = Vec::new();
    for _ in 0..RELAYS {
        let mut relay =
            PushReplica::connect(primary.addr(), backend::by_name("sharded_map_8").unwrap())
                .expect("relay");
        relay_addrs.push(
            relay
                .serve_relay(ServerConfig::with_workers(2))
                .expect("serve relay"),
        );
        relays.push(relay);
    }
    let mut leaves: Vec<PushReplica> = (0..LEAVES)
        .map(|i| {
            let mut leaf = PushReplica::connect(
                relay_addrs[i % RELAYS],
                backend::by_name("sharded_map_8").unwrap(),
            )
            .expect("leaf");
            leaf.serve_relay(ServerConfig::with_workers(2))
                .expect("leaf serves reads");
            leaf
        })
        .collect();
    let mut reader = Client::connect(leaves[0].relay_addr().unwrap()).expect("leaf reader");
    println!("tree:    primary -> {RELAYS} relays -> {LEAVES} leaves");

    // Drive epochs through the tree, carrying the writer's session
    // token to a leaf read each round.
    let egress_start = primary.wire_bytes().sent;
    let mut token = SessionToken::default();
    let mut head = 1;
    for round in 1..=ROUNDS {
        let key = round as i64 % KEYS;
        writer
            .insert_tracked(key, round as i64, &mut token)
            .expect("tracked write");
        writer.publish().expect("publish");
        head += 1;
        for relay in &mut relays {
            pump_to(relay, head);
        }
        for leaf in &mut leaves {
            pump_to(leaf, head);
        }
        // Read-your-writes through the leaf: GetAt floored at the
        // token's watermark must return this round's write.
        let got = reader.get_at(key, &mut token, 1_000).expect("leaf read");
        assert_eq!(got, Some(round as i64), "leaf served a stale epoch");
    }
    let primary_egress = primary.wire_bytes().sent - egress_start;
    let relay_egress: u64 = relays
        .iter()
        .map(|r| r.relay_wire_bytes().unwrap().sent)
        .sum();

    println!("\nafter {ROUNDS} epochs:");
    println!(
        "  primary egress: {primary_egress} bytes ({RELAYS} subscribers — \
         independent of the {LEAVES} leaves)"
    );
    println!("  relay egress:   {relay_egress} bytes (the fan-out, downstream)");

    let gauges = primary.gauges();
    println!(
        "  primary gauges: subscribers={} pushes={} demotions={} feed_head={}",
        gauges.subscribers, gauges.pushes, gauges.push_demotions, gauges.feed_head
    );
    assert_eq!(gauges.subscribers as usize, RELAYS);
    assert_eq!(gauges.push_demotions, 0);

    for (i, node) in relays.iter().chain(leaves.iter()).enumerate() {
        let role = if i < RELAYS { "relay" } else { "leaf " };
        let push = node.push_stats();
        let pull = node.pull_stats();
        println!(
            "  {role}[{i}]: applied={} pushes_applied={} repair_diff_pulls={} full_syncs={}",
            node.applied_epoch(),
            push.pushes_applied,
            pull.diff_pulls,
            pull.full_syncs
        );
        assert_eq!(pull.diff_pulls, 0, "every epoch must arrive as a push");
    }
    println!(
        "\nsession token ended at epoch {} — every round's write was read \
         back through a leaf, two hops from the primary",
        token.epoch()
    );

    drop(reader);
    drop(leaves);
    drop(relays);
    primary.shutdown();
}
