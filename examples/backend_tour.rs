//! Tour of every backend through the unified trait family.
//!
//! One workload, written once against `ConcurrentSet`, runs over every
//! backend in the registry (`dyn` constructors); then a generic
//! snapshot/diff audit, written once against
//! `Snapshottable + MapSnapshot`, runs over every map backend. Adding a
//! backend to the registry adds a row here with zero changes to this
//! file.
//!
//! ```text
//! cargo run --release --example backend_tour
//! ```

use std::time::Instant;

use path_copying::pathcopy_concurrent::registry::{
    for_each_map_backend, set_backends, MapBackendDriver,
};
use path_copying::prelude::*;

const THREADS: i64 = 4;
const PER_THREAD: i64 = 2_000;

fn main() {
    println!("== one workload, every set backend (via the dyn registry) ==");
    println!(
        "{:<18} {:>10} {:>12} {:>14} {:>12}",
        "backend", "final len", "total ops", "mean attempts", "elapsed"
    );
    for backend in set_backends() {
        let set = (backend.make)();
        let started = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let set = set.as_ref();
                scope.spawn(move || {
                    // Hash-scrambled keys (splitmix64 is a bijection, so
                    // they stay disjoint across threads) — ascending runs
                    // would degenerate the rotation-free external BST.
                    let key = |i: i64| {
                        path_copying::pathcopy_trees::hash::splitmix64((t * PER_THREAD + i) as u64)
                            as i64
                    };
                    for i in 0..PER_THREAD {
                        set.insert(key(i));
                    }
                    for i in 0..PER_THREAD / 2 {
                        set.remove(&key(i));
                    }
                });
            }
        });
        let elapsed = started.elapsed();
        let stats = set.stats_snapshot();
        let attempts = if stats.ops == 0 {
            String::from("n/a (lock)")
        } else {
            format!("{:.2}", stats.mean_attempts())
        };
        println!(
            "{:<18} {:>10} {:>12} {:>14} {:>10.1?}",
            backend.name,
            set.len(),
            stats.ops,
            attempts,
            elapsed
        );
    }

    println!();
    println!("== generic snapshot audit, every map backend ==");
    struct Audit;
    impl MapBackendDriver for Audit {
        fn drive<M>(&mut self, name: &str, make: fn() -> M)
        where
            M: ConcurrentMap<i64, i64> + Snapshottable,
            M::Snapshot: MapSnapshot<i64, i64>,
        {
            let m = make();
            for k in 0..1_000 {
                m.insert(k, k);
            }
            let before = m.snapshot();

            // Mutate: the snapshot cannot see any of it.
            m.insert(1_000, 0);
            m.remove(&17);
            m.compute(&500, &|v| v.map(|x| x * 10));

            let after = m.snapshot();
            let window: i64 = after.range(100..110).map(|(_, v)| *v).sum();
            let diff = before.diff(&after);
            println!(
                "{name:<16} before={} after={} range(100..110) sum={window} diff={:?}",
                MapSnapshot::len(&before),
                MapSnapshot::len(&after),
                diff
            );
            assert_eq!(MapSnapshot::len(&before), 1_000, "snapshots are immutable");
            assert_eq!(
                diff,
                vec![
                    DiffEntry::Removed(17, 17),
                    DiffEntry::Changed(500, 500, 5_000),
                    DiffEntry::Added(1_000, 0),
                ]
            );
        }
    }
    for_each_map_backend(&mut Audit);

    println!();
    println!("All backends agree — one trait family, one test surface.");
}
