//! MVCC-style snapshot analytics — the workload family that motivates
//! multi-versioned indexes (the paper's [8], Sun et al., VLDB 2019):
//! OLTP writers mutate a keyed index while an OLAP reader runs long
//! consistent scans, with neither blocking the other.
//!
//! ```text
//! cargo run --release --example mvcc_snapshots
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use path_copying::prelude::TreapMap;

/// A tiny "orders" table: order id -> amount in cents.
fn main() {
    let orders: TreapMap<u64, u64> = TreapMap::new();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Two OLTP writers: insert new orders and amend old ones.
        for w in 0..2u64 {
            let orders = &orders;
            let stop = &stop;
            s.spawn(move || {
                let mut id = w; // writer-disjoint ids
                while !stop.load(Ordering::Relaxed) {
                    orders.insert(id, (id % 997) * 100);
                    if id > 10 {
                        // Amend an earlier order read-modify-write style:
                        // linearized at the root CAS, no locks anywhere.
                        orders.compute(&(id - 10), |v| v.map(|&amt| amt + 1));
                    }
                    id += 2;
                }
            });
        }

        // The OLAP reader: repeatedly takes a snapshot and computes an
        // aggregate over the whole table. The snapshot is immutable, so
        // the sum is transactionally consistent no matter how long the
        // scan takes — this is snapshot isolation for free.
        let orders = &orders;
        let stop = &stop;
        s.spawn(move || {
            let mut scans = 0u32;
            let mut last_count = 0usize;
            while scans < 50 {
                let snap = orders.snapshot();
                let count = snap.len();
                let total: u64 = snap.iter().map(|(_, amt)| *amt).sum();
                let mean = if count == 0 { 0 } else { total / count as u64 };
                // Monotone table growth must be visible across snapshots.
                assert!(count >= last_count, "snapshots went backwards");
                last_count = count;
                if scans % 10 == 0 {
                    println!("scan {scans:>2}: {count:>7} orders, mean amount {mean:>6} cents");
                }
                scans += 1;
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    // Time-travel check: range queries on a retained snapshot.
    let snap = orders.snapshot();
    let low_ids: Vec<u64> = snap.range(..100).map(|(id, _)| *id).collect();
    println!(
        "final table: {} orders; ids below 100: {} entries",
        snap.len(),
        low_ids.len()
    );
    let stats = orders.stats().snapshot();
    println!(
        "writer contention: {:.3} attempts per update, {} no-op updates skipped their CAS",
        stats.mean_attempts(),
        stats.noop_updates
    );
}
