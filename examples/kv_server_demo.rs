//! The serving layer end to end: an in-process TCP server over the
//! sharded UC map, a writer hammering point updates through one
//! connection, and an auditor on another connection pinning named
//! snapshots and pulling `Diff`s over the socket.
//!
//! The printed table is the paper's headline property measured through
//! the network stack: the auditor's diff work tracks the number of keys
//! *changed* between two pinned versions (plus boundary paths), not the
//! 50 000-entry map size — path copying's shared subtrees are pruned by
//! pointer equality on the server, and only the change crosses the wire.
//!
//! ```text
//! cargo run --release --example kv_server_demo
//! ```

use path_copying::prelude::BatchOp;
use pathcopy_server::{backend, Client, ServerConfig};

const MAP_SIZE: i64 = 50_000;

fn main() {
    let server = pathcopy_server::spawn(
        backend::by_name("sharded_map_8").expect("registered backend"),
        ServerConfig::with_workers(4),
    )
    .expect("bind ephemeral loopback port");
    println!("serving sharded_map_8 on {}", server.addr());

    // Prefill through the wire in batches.
    let mut auditor = Client::connect(server.addr()).expect("auditor connect");
    for chunk in (0..MAP_SIZE).collect::<Vec<_>>().chunks(1000) {
        let ops: Vec<BatchOp<i64, i64>> = chunk.iter().map(|&k| BatchOp::Insert(k, 0)).collect();
        auditor.batch(&ops).expect("prefill");
    }
    println!("prefilled {MAP_SIZE} keys over the socket\n");

    println!(
        "{:>14} {:>12} {:>12} {:>14}",
        "keys_changed", "diff_size", "map_size", "diff/size"
    );
    for round in 0..6u32 {
        let changed = 16i64 << (2 * round); // 16, 64, 256, 1024, 4096, 16384
        let before = auditor.snapshot().expect("pin before-version");

        // The writer mutates `changed` keys on its own connection while
        // the pinned version stays frozen in the server's table.
        let addr = server.addr();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut writer = Client::connect(addr).expect("writer connect");
                for k in 0..changed.min(MAP_SIZE) {
                    // Spread updates across the key space (and shards).
                    let key = (k * 7919) % MAP_SIZE;
                    writer.insert(key, round as i64 + 1).expect("write");
                }
            });
        });

        let diff = auditor.diff(before, None).expect("diff over the wire");
        let map_size = auditor.stats().expect("stats").len;
        println!(
            "{:>14} {:>12} {:>12} {:>14.4}",
            changed.min(MAP_SIZE),
            diff.len(),
            map_size,
            diff.len() as f64 / map_size as f64
        );
        assert!(
            diff.len() <= changed.min(MAP_SIZE) as usize,
            "diff can never exceed the number of touched keys"
        );
        auditor.release(before).expect("release");
    }

    let stats = auditor.stats().expect("final stats");
    println!(
        "\nengine after the run: ops={} attempts={} frozen_installs={} freeze_retries={}",
        stats.ops, stats.attempts, stats.frozen_installs, stats.freeze_retries
    );
    println!("server handled {} requests total", server.requests_served());
    server.shutdown();
    println!("server shut down cleanly");
}
