//! Quickstart: a lock-free concurrent ordered set in a few lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use path_copying::prelude::*;

fn main() {
    // A lock-free, linearizable ordered set built from a persistent treap
    // by the paper's universal construction.
    let set = TreapSet::new();

    // Writers: each thread inserts a disjoint block (the paper's Batch
    // workload in miniature). Updates are lock-free; failed CASes retry.
    std::thread::scope(|s| {
        for t in 0..4i64 {
            let set = &set;
            s.spawn(move || {
                for i in 0..10_000 {
                    set.insert(t * 10_000 + i);
                }
            });
        }

        // A concurrent reader: wait-free queries on immutable snapshots.
        let set = &set;
        s.spawn(move || {
            for _ in 0..100 {
                let snap = set.snapshot();
                // The snapshot is a full persistent treap: iterate, range
                // query, rank-select — all consistent, never blocking.
                let below_100 = snap.as_map().range(..100).count();
                assert!(below_100 <= 100);
            }
        });
    });

    assert_eq!(set.len(), 40_000);
    println!("inserted {} keys from 4 threads", set.len());

    // Snapshots are versions: they survive later updates untouched.
    let before = set.snapshot();
    for i in 0..10_000 {
        set.remove(&i);
    }
    println!(
        "after removing 10k keys: live set = {}, old snapshot still = {}",
        set.len(),
        before.len()
    );
    assert_eq!(before.len(), 40_000);

    // The UC records contention statistics (the paper's Fig-4 quantity).
    let stats = set.stats().snapshot();
    println!(
        "updates: {} ops, {:.3} attempts/op, {:.1}% committed first try",
        stats.ops,
        stats.mean_attempts(),
        100.0 * stats.first_try_rate()
    );
}
