//! The paper's experiment in miniature: measure the path-copying UC
//! against the sequential treap on the Batch and Random workloads, then
//! show the model's prediction for the same process counts.
//!
//! ```text
//! cargo run --release --example scaling_demo
//! ```
//!
//! (For the full-scale version with the paper's machine profiles, run
//! the `paper_tables` binary in `crates/bench`.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use path_copying::pathcopy_sim::{model_speedup, simulate_concurrent, ConcConfig};
use path_copying::pathcopy_trees::mutable::MutTreapSet;
use path_copying::pathcopy_workloads::{BatchWorkload, Op, OpStream};
use path_copying::prelude::TreapSet;

const PREFILL: usize = 200_000;
const KEYS_PER_PROC: usize = 20_000;
const TRIAL: Duration = Duration::from_millis(300);

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("hardware threads: {cores}\n");

    // --- Real measurement (Batch workload) -----------------------------
    let workload = BatchWorkload::generate(cores.max(2), PREFILL, KEYS_PER_PROC, 42);

    // Sequential baseline: classical mutable treap.
    let mut seq: MutTreapSet<i64> = workload.prefill.iter().copied().collect();
    let mut stream = workload.streams().remove(0);
    let started = Instant::now();
    let mut seq_ops = 0u64;
    while started.elapsed() < TRIAL {
        for _ in 0..64 {
            match stream.next_op() {
                Op::Insert(k) => {
                    seq.insert(k);
                }
                Op::Remove(k) => {
                    seq.remove(&k);
                }
                Op::Contains(_) => {}
            }
            seq_ops += 1;
        }
    }
    let seq_rate = seq_ops as f64 / started.elapsed().as_secs_f64();
    println!("sequential treap: {seq_rate:>10.0} ops/s");

    // UC at increasing thread counts.
    let mut prefilled = path_copying::pathcopy_trees::TreapSet::empty();
    for &k in &workload.prefill {
        if let Some(next) = prefilled.insert(k) {
            prefilled = next;
        }
    }
    for p in [1, 2, cores.max(2)] {
        let set = TreapSet::from_version(prefilled.clone());
        let stop = AtomicBool::new(false);
        let mut streams = workload.streams();
        streams.truncate(p);
        let mut total = 0u64;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for mut st in streams {
                let set = &set;
                let stop = &stop;
                handles.push(s.spawn(move || {
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        match st.next_op() {
                            Op::Insert(k) => {
                                set.insert(k);
                            }
                            Op::Remove(k) => {
                                set.remove(&k);
                            }
                            Op::Contains(_) => {}
                        }
                        ops += 1;
                    }
                    ops
                }));
            }
            std::thread::sleep(TRIAL);
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                total += h.join().unwrap();
            }
        });
        let rate = total as f64 / TRIAL.as_secs_f64();
        let stats = set.stats().snapshot();
        println!(
            "UC {p}p (batch):  {rate:>10.0} ops/s  speedup {:.2}x  attempts/op {:.2}",
            rate / seq_rate,
            stats.mean_attempts()
        );
    }

    // --- Model prediction at the paper's scale --------------------------
    println!("\nAppendix-A model at the paper's process counts (N=2^20, M=2^15, R=100):");
    let (n, m, r) = (1u64 << 20, 1usize << 15, 100u64);
    for p in [1usize, 4, 10, 17] {
        let sim = simulate_concurrent(ConcConfig {
            ops: 4_000,
            warmup: 1_000,
            ..ConcConfig::new(1 << 14, p, r) // smaller N for a fast demo
        });
        println!(
            "  P={p:>2}: closed-form speedup {:.2}x, simulated retries/op {:.2}, \
             uncached-on-retry {:.2}",
            model_speedup(p as f64, n as f64, m as f64, r as f64),
            sim.attempts_per_op,
            sim.retry_uncached_mean
        );
    }
    println!("\n(The real effect needs >= P hardware threads and a tree larger than cache;");
    println!(" see EXPERIMENTS.md for the full reproduction and its caveats.)");
}
