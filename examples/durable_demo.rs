//! The durability subsystem end to end: a primary whose published
//! epochs are persisted to a segmented epoch log, a simulated crash
//! with a **torn tail** (a half-written record at the end of the newest
//! segment), recovery that truncates the tear and continues the epoch
//! sequence, a point-in-time restore of an old epoch, and a replica
//! that bootstraps from the log with **zero wire bytes**.
//!
//! The log reuses the proto-v2 wire encoding for its records: a
//! checkpoint is a run of `SyncPage` frames, an incremental epoch is an
//! `EpochDiff` frame, each wrapped in a length + CRC32 envelope. What
//! travels to replicas and what lands on disk are the same bytes.
//!
//! ```text
//! cargo run --release --example durable_demo
//! ```

use std::io::Write as _;
use std::sync::Arc;

use pathcopy_durable::{EpochLog, FeedPersister, LogConfig};
use pathcopy_replica::Replica;
use pathcopy_server::{backend, Client, FeedSink, ServerConfig};

const ACCOUNTS: i64 = 500;
const EPOCHS: i64 = 12;

fn logged_config(log: &Arc<EpochLog>) -> (ServerConfig, Arc<FeedPersister>) {
    let persister = FeedPersister::new(Arc::clone(log));
    let config = ServerConfig {
        feed_start: log.head() + 1,
        feed_sink: Some(Arc::clone(&persister) as Arc<dyn FeedSink>),
        ..ServerConfig::default()
    };
    (config, persister)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("pathcopy-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = LogConfig {
        checkpoint_every: 4, // dense checkpoints so the demo shows rotation
        ..LogConfig::default()
    };

    // ── Run 1: a durable primary ────────────────────────────────────
    let (log, _) = EpochLog::open(&dir, config.clone()).expect("create log");
    let log = Arc::new(log);
    let (server_config, persister) = logged_config(&log);
    let server = pathcopy_server::spawn(
        backend::by_name("sharded_map_8").expect("registered backend"),
        server_config,
    )
    .expect("bind ephemeral loopback port");

    let mut writer = Client::connect(server.addr()).expect("writer connect");
    for k in 0..ACCOUNTS {
        writer.insert(k, 0).expect("seed");
    }
    for round in 1..=EPOCHS {
        writer.insert(round % ACCOUNTS, round).expect("update");
        writer.insert(-round, round).expect("insert");
        let epoch = writer.publish().expect("publish");
        assert_eq!(log.head(), epoch, "persisted before the reply");
    }
    assert_eq!(persister.error_count(), 0, "no append errors");
    let head_before_crash = log.head();
    let io = log.io_stats();
    println!(
        "run 1: published {head_before_crash} epochs, log has {} segment(s), {} bytes \
         ({} appends, {} fsyncs)",
        log.segment_count(),
        log.total_bytes(),
        io.appends,
        io.fsyncs
    );

    // ── Crash: kill the server, then tear the newest segment ────────
    server.shutdown();
    drop(log);
    let newest = std::fs::read_dir(&dir)
        .expect("list segments")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .max()
        .expect("log has segments");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&newest)
        .expect("open newest segment");
    file.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02])
        .expect("simulate a crash mid-append");
    drop(file);
    println!(
        "crash: appended a 7-byte torn record to {}",
        newest.display()
    );

    // ── Run 2: recover, restore, resume ─────────────────────────────
    let (log, recovered) = EpochLog::open(&dir, config).expect("recover log");
    assert_eq!(recovered.truncated_bytes, 7, "the tear, and only the tear");
    assert_eq!(recovered.head, head_before_crash, "no committed epoch lost");
    println!(
        "recover: head {} intact, {} torn byte(s) truncated from the newest segment",
        recovered.head, recovered.truncated_bytes
    );

    // Point-in-time restore: any retained epoch, as it was.
    let (oldest, newest_epoch) = log.retained().expect("non-empty log");
    let target = (oldest + newest_epoch) / 2;
    let old_state = log.restore_epoch(target).expect("point-in-time restore");
    let t = target as i64;
    assert_eq!(old_state.get(&-t), Some(t), "write from epoch {target}");
    assert_eq!(
        old_state.get(&-(t + 1)),
        None,
        "later epochs absent from the restored state"
    );
    println!(
        "restore: epoch {target} rebuilt ({} keys); epoch {}'s writes absent, as they should be",
        old_state.len(),
        target + 1
    );

    // Resume: the recovered primary continues the epoch sequence.
    let log = Arc::new(log);
    let (server_config, _persister) = logged_config(&log);
    let engine = backend::by_name("sharded_map_8").expect("registered backend");
    let replayed = log
        .replay_into(engine.as_ref())
        .expect("replay into engine");
    assert_eq!(replayed, head_before_crash);
    let server = pathcopy_server::spawn(engine, server_config).expect("respawn");
    let mut writer = Client::connect(server.addr()).expect("reconnect");
    writer.insert(0, 777).expect("post-recovery write");
    let resumed = writer.publish().expect("post-recovery publish");
    assert_eq!(
        resumed,
        head_before_crash + 1,
        "no epoch reused, none skipped"
    );
    println!("resume: first post-recovery publish is epoch {resumed}");

    // ── Replica bootstrap from the log: zero wire bytes ─────────────
    let mut replica = Replica::connect(
        server.addr(),
        backend::by_name("sharded_map_8").expect("registered backend"),
    )
    .expect("replica connect");
    let seeded = replica.seed_from_log(&log).expect("seed from log");
    let wire = replica.primary_wire_bytes();
    assert_eq!(
        (wire.sent, wire.received),
        (0, 0),
        "the log replaced the wire"
    );
    println!(
        "seed: replica at epoch {seeded} with {} keys — {} wire bytes moved",
        replica.store().len(),
        wire.sent + wire.received
    );
    let outcome = replica.sync_once().expect("converge");
    println!("converge: one incremental sync → {outcome:?}");
    assert_eq!(
        replica.store().get(0),
        Some(777),
        "caught up to the live head"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).expect("demo cleanup");
    println!("\nthe epoch log survived the crash; nothing published was lost.");
}
