//! The replication subsystem end to end: one primary, two snapshot-diff
//! replicas, a writer committing atomic pair-transfers and publishing
//! epochs, and a reader per replica verifying that replicas only ever
//! expose **frozen published versions** — never a half-applied epoch.
//!
//! Invariants the readers check on every scan of a replica:
//!
//! * every account pair `(2i, 2i+1)` sums to zero — a replica applies
//!   each epoch diff as one atomic cross-shard batch, so the writer's
//!   paired updates can never be observed torn;
//! * the version key only moves forward — replicas step through the
//!   primary's monotone epoch feed.
//!
//! The final table shows why this scales reads: each replica
//! bootstrapped once (O(n) bytes) and then followed the feed with
//! pruned diffs (O(changes) bytes per epoch).
//!
//! ```text
//! cargo run --release --example cluster_demo
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use path_copying::prelude::BatchOp;
use pathcopy_replica::cluster;
use pathcopy_server::{backend, Client, ServerConfig};

const PAIRS: i64 = 256;
const VERSION_KEY: i64 = -1;
const ROUNDS: i64 = 300;

fn main() {
    let server = pathcopy_server::spawn(
        backend::by_name("sharded_map_8").expect("registered backend"),
        ServerConfig::default(),
    )
    .expect("bind ephemeral loopback port");
    let addr = server.addr();
    println!("primary: sharded_map_8 on {addr}");

    // Seed the accounts and the version key, then publish epoch 1.
    {
        let mut setup = Client::connect(addr).expect("setup connect");
        let mut init: Vec<BatchOp<i64, i64>> =
            (0..PAIRS * 2).map(|k| BatchOp::Insert(k, 0)).collect();
        init.push(BatchOp::Insert(VERSION_KEY, 0));
        setup.batch(&init).expect("seed accounts");
        setup.publish().expect("epoch 1");
    }

    // Two read replicas: bootstrap (full sync) + their own TCP endpoints.
    let nodes = cluster(addr, 2, "sharded_map_8", 2).expect("stand up replicas");
    for (i, node) in nodes.iter().enumerate() {
        println!(
            "replica[{i}]: serving on {} (bootstrapped at epoch {})",
            node.server.addr(),
            node.replica.applied_epoch()
        );
    }
    let reader_addrs: Vec<_> = nodes.iter().map(|n| n.server.addr()).collect();

    let writer_done = AtomicBool::new(false);
    let mut final_nodes = Vec::new();
    let mut reader_reports = Vec::new();
    std::thread::scope(|s| {
        let writer_done = &writer_done;

        // The writer: atomic pair transfers on the primary, one published
        // epoch per round.
        s.spawn(move || {
            let mut writer = Client::connect(addr).expect("writer connect");
            for round in 1..=ROUNDS {
                let pair = (round % PAIRS) * 2;
                writer
                    .batch(&[
                        BatchOp::Insert(pair, round),
                        BatchOp::Insert(pair + 1, -round),
                        BatchOp::Insert(VERSION_KEY, round),
                    ])
                    .expect("pair transfer");
                writer.publish().expect("publish epoch");
            }
            writer_done.store(true, Ordering::Release);
        });

        // The sync loops: one per replica, pulling diffs until the writer
        // finishes and the replica has caught up to the final epoch.
        let mut sync_handles = Vec::new();
        for node in nodes {
            sync_handles.push(s.spawn(move || {
                let mut node = node;
                loop {
                    let outcome = node.replica.sync_once().expect("sync");
                    if writer_done.load(Ordering::Acquire) {
                        if let pathcopy_replica::SyncOutcome::Diff { changes: 0, .. } = outcome {
                            return node;
                        }
                    }
                }
            }));
        }

        // One reader per replica: hammer coherent scans, checking the
        // frozen-version invariants.
        let mut reader_handles = Vec::new();
        for (i, raddr) in reader_addrs.iter().enumerate() {
            let raddr = *raddr;
            reader_handles.push(s.spawn(move || {
                let mut reader = Client::connect(raddr).expect("reader connect");
                let mut last_version = -1i64;
                let mut scans = 0u64;
                while !writer_done.load(Ordering::Acquire) || scans < 5 {
                    let (entries, complete) = reader.range(None, .., 0).expect("scan");
                    assert!(complete);
                    let version = entries
                        .iter()
                        .find(|(k, _)| *k == VERSION_KEY)
                        .map(|(_, v)| *v)
                        .expect("version key present after bootstrap");
                    assert!(
                        version >= last_version,
                        "replica[{i}] went back in time: {version} < {last_version}"
                    );
                    last_version = version;
                    let accounts: Vec<(i64, i64)> =
                        entries.iter().filter(|(k, _)| *k >= 0).copied().collect();
                    assert_eq!(accounts.len() as i64, PAIRS * 2);
                    for pair in accounts.chunks(2) {
                        let [(ka, va), (kb, vb)] = pair else {
                            unreachable!("even account count")
                        };
                        assert_eq!(*kb, ka + 1, "pair keys adjacent");
                        assert_eq!(
                            va + vb,
                            0,
                            "replica[{i}] exposed a torn epoch at pair ({ka},{kb})"
                        );
                    }
                    scans += 1;
                }
                (i, scans, last_version)
            }));
        }

        for h in reader_handles {
            reader_reports.push(h.join().expect("reader panicked"));
        }
        for h in sync_handles {
            final_nodes.push(h.join().expect("sync loop panicked"));
        }
    });

    for (i, scans, version) in &reader_reports {
        println!("reader[{i}]: {scans} coherent scans, 0 torn pairs, final version {version}");
    }
    println!(
        "\n{:>8} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "replica", "applied_epoch", "diff_pulls", "diff_bytes", "full_bytes", "bytes/epoch"
    );
    for (i, node) in final_nodes.iter().enumerate() {
        let s = node.replica.stats();
        println!(
            "{:>8} {:>14} {:>12} {:>12} {:>12} {:>12.1}",
            i,
            s.applied_epoch,
            s.diff_pulls,
            s.diff_bytes,
            s.full_bytes,
            s.diff_bytes as f64 / s.diff_pulls.max(1) as f64,
        );
        assert_eq!(s.lag(), 0, "replica {i} caught up");
    }
    println!(
        "\ndiff catch-up moved O(changes) bytes per epoch; the bootstrap paid O(n) once — \
         that asymmetry is the paper's pruned diff doing replication."
    );
    for node in final_nodes {
        node.server.shutdown();
    }
    server.shutdown();
    println!("cluster shut down cleanly");
}
