//! # path-copying
//!
//! Reproduction of *Unexpected Scaling in Path Copying Trees* (Kokorin,
//! Fedorov, Brown, Aksenov — PPoPP 2023, arXiv:2212.00521): a lock-free
//! universal construction over persistent path-copying data structures,
//! the persistent structures themselves, the paper's private-cache
//! analytical model as an executable simulator, and a benchmark harness
//! regenerating every table and figure.
//!
//! This crate re-exports the workspace's public API; see the member
//! crates for details:
//!
//! * [`pathcopy_core`] — `VersionCell` (the `Root_Ptr` register),
//!   `PathCopyUc` (the retrying load/copy/CAS loop), lock baselines,
//!   and the unified trait family ([`pathcopy_core::api`]).
//! * [`pathcopy_trees`] — persistent treap, AVL, red–black tree,
//!   external BST, list, queue, vector; sharing measurements.
//! * [`pathcopy_concurrent`] — ready-made lock-free sets/maps/sequences
//!   and the backend registry.
//! * [`pathcopy_sim`] — the Appendix-A model: private LRU caches,
//!   synchronous processes, closed-form speedup.
//! * [`pathcopy_workloads`] — the §4 Batch/Random workload generators.
//! * [`pathcopy_server`] — the serving layer: a length-prefixed binary
//!   wire protocol (v3, correlation ids for pipelining), an
//!   event-driven nonblocking TCP server generic over the backend
//!   registry, a pipelined session client with a blocking facade, and
//!   the primary-side replication feed (`std::net` plus a hand-rolled
//!   epoll/poll shim — no async runtime).
//! * [`pathcopy_replica`] — snapshot-diff replication: replicas that
//!   bootstrap from a chunked full sync, then follow the primary's
//!   version feed with pruned diffs; plus the `loadgen` traffic
//!   generator (`--replicas N` for the read scale-out topology).
//! * [`pathcopy_durable`] — durability for the feed: a segmented,
//!   checksummed epoch log (checkpoints + diff records in the wire
//!   encoding), crash recovery with torn-tail truncation,
//!   point-in-time restore, and log-seeded replica bootstrap.
//!
//! ## Choosing a backend
//!
//! Every backend implements the same trait family
//! ([`ConcurrentMap`](prelude::ConcurrentMap) /
//! [`ConcurrentSet`](prelude::ConcurrentSet) +
//! [`Snapshottable`](prelude::Snapshottable)), so the choice is a
//! one-line swap:
//!
//! | Backend | Progress guarantee | Snapshot cost | When to use |
//! |---|---|---|---|
//! | [`TreapMap`](prelude::TreapMap) / [`TreapSet`](prelude::TreapSet) | lock-free updates, wait-free reads | O(1) | The paper's construction; the default until a single root CAS saturates. |
//! | [`ShardedTreapMap`](prelude::ShardedTreapMap) / [`ShardedTreapSet`](prelude::ShardedTreapSet) | lock-free | O(shards), validated double scan | Write-heavy multi-core workloads; atomic cross-shard batches via `transact`. `len()` is weakly consistent — use the snapshot for exact counts. |
//! | [`ConcurrentExternalBstSet`](prelude::ConcurrentExternalBstSet) | lock-free | O(1) | The Appendix-A model tree (no rotations); reference subject for path-length measurements. |
//! | [`ConcurrentAvlSet`](prelude::ConcurrentAvlSet), [`ConcurrentRbSet`](prelude::ConcurrentRbSet) | lock-free | O(1) | Alternative balancing disciplines under the same UC. |
//! | [`LockedMap`](prelude::LockedMap) / [`LockedTreapSet`](prelude::LockedTreapSet) | blocking (global mutex) | O(1) | The intro's "simplest UC" baseline; surprisingly fine at low thread counts. |
//! | [`RwLockedTreapSet`](prelude::RwLockedTreapSet) | blocking (rwlock) | O(1) | Read-mostly baseline; writers still serialize. |
//!
//! Because every version is persistent, snapshots on *every* backend are
//! immutable, valid forever, and never block writers; they differ only
//! in what taking one costs. Snapshots support **lazy** `iter()` /
//! `range(..)` (real iterators over the persistent tree — no
//! intermediate `Vec`) and snapshot-to-snapshot
//! [`diff`](prelude::MapSnapshot::diff), which prunes shared subtrees by
//! pointer equality, so diffing nearby versions costs the size of the
//! change, not the size of the map.
//!
//! Write code against the traits once and it runs on every row of the
//! table (the backend registry in
//! [`pathcopy_concurrent::registry`] automates exactly this for the
//! benches and oracle tests):
//!
//! ```
//! use path_copying::prelude::*;
//!
//! /// Generic over any snapshottable map backend.
//! fn audit<M>(m: &M) -> Vec<DiffEntry<i64, i64>>
//! where
//!     M: ConcurrentMap<i64, i64> + Snapshottable,
//!     M::Snapshot: MapSnapshot<i64, i64>,
//! {
//!     let before = m.snapshot();
//!     m.insert(1, 100);
//!     m.compute(&2, &|v| Some(v.copied().unwrap_or(0) + 1));
//!     let after = m.snapshot();
//!     // Lazy range scan over the immutable view:
//!     let _first = after.range(..10).next();
//!     before.diff(&after) // what changed, in key order
//! }
//!
//! let treap: TreapMap<i64, i64> = TreapMap::new();
//! let sharded: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(8);
//! let locked: LockedMap<i64, i64> = LockedMap::new();
//! assert_eq!(audit(&treap).len(), 2);
//! assert_eq!(audit(&sharded).len(), 2);
//! assert_eq!(audit(&locked).len(), 2);
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use path_copying::prelude::*;
//!
//! let set = TreapSet::new();
//! std::thread::scope(|s| {
//!     for t in 0..4i64 {
//!         let set = &set;
//!         s.spawn(move || {
//!             for i in 0..1000 {
//!                 set.insert(t * 1000 + i); // lock-free, linearizable
//!             }
//!         });
//!     }
//! });
//! assert_eq!(set.len(), 4000);
//!
//! // O(1) immutable snapshot: reads never block writers.
//! let snap = set.snapshot();
//! set.remove(&0);
//! assert!(snap.contains(&0));
//! ```
//!
//! ## Scaling past the single root: the sharded map
//!
//! The paper's construction serializes every update through one
//! `Root_Ptr` CAS. [`ShardedTreapMap`](prelude::ShardedTreapMap)
//! hash-partitions keys across `N` independent UC roots: per-key
//! operations keep the UC's lock-freedom and linearizability, updates to
//! different shards never contend, and `snapshot_all()` still yields a
//! coherent cut of the whole map via a validated double scan:
//!
//! ```
//! use path_copying::prelude::ShardedTreapMap;
//!
//! let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(16);
//! std::thread::scope(|s| {
//!     for t in 0..8u64 {
//!         let m = &m;
//!         s.spawn(move || {
//!             for i in 0..500 {
//!                 m.insert(t * 500 + i, i); // contends only within one shard
//!             }
//!         });
//!     }
//! });
//!
//! let snap = m.snapshot_all(); // consistent across all 16 shards
//! assert_eq!(snap.len(), 4000);
//! m.remove(&0);
//! assert!(snap.contains_key(&0)); // the cut is immutable
//! ```
//!
//! Compare the two yourself: `cargo bench --bench sharded_scaling` (or
//! `cargo run --release --example sharded_demo`).
//!
//! ## Atomic cross-shard batch transactions
//!
//! Path copying makes a *batch* of updates just another sequential
//! function from one persistent version to the next.
//! [`transact`](prelude::ShardedTreapMap::transact) extends that to
//! batches spanning shards: single-shard batches commit through the
//! ordinary lock-free CAS loop, multi-shard batches through an ordered
//! two-phase commit that freezes the involved roots so the whole batch
//! flips atomically — no reader or `snapshot_all()` ever sees it
//! half-applied. [`ShardedTreapSet`](prelude::ShardedTreapSet) is the
//! set facade over the same machinery:
//!
//! ```
//! use path_copying::prelude::{BatchOp, BatchResult, ShardedTreapMap, ShardedTreapSet};
//!
//! let m: ShardedTreapMap<&str, i64> = ShardedTreapMap::with_shards(8);
//! m.insert("alice", 100);
//! m.insert("bob", 0);
//! // Atomic transfer across shards; the Get sees the batch's own writes.
//! let r = m.transact(&[
//!     BatchOp::Insert("alice", 70),
//!     BatchOp::Insert("bob", 30),
//!     BatchOp::Get("bob"),
//! ]);
//! assert_eq!(r[2], BatchResult::Got(Some(30)));
//!
//! let s: ShardedTreapSet<u64> = ShardedTreapSet::with_shards(8);
//! assert_eq!(s.insert_batch(&[1, 2, 3]), vec![true, true, true]);
//! ```
//!
//! See `cargo run --release --example batch_txn_demo` and
//! `cargo bench --bench batch_txn`.
//!
//! ## Serving the map over the network
//!
//! The properties above are exactly what a read-heavy serving system
//! wants — lock-free point writes racing ahead while scans and diffs run
//! on frozen versions — so the workspace ships them as a TCP service.
//! [`pathcopy_server`] speaks a hand-rolled length-prefixed binary
//! protocol (no serde, no async runtime) and serves any registry backend
//! behind `Box<dyn ServeBackend>`. A `Snapshot` request pins a coherent
//! version in the server's table for the cost of an `Arc` clone per
//! shard root; `Range` and `Diff` requests — from any connection — then
//! read that immutable version while writers keep committing, and
//! `Batch` frames commit all-or-nothing through the sharded map's
//! cross-shard `transact`:
//!
//! ```
//! use pathcopy_server::{backend, Client, ServerConfig};
//!
//! // In-process server over the sharded map, on an ephemeral port.
//! let server = pathcopy_server::spawn(
//!     backend::by_name("sharded_map_8").unwrap(),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.insert(1, 10).unwrap();
//! let pinned = client.snapshot().unwrap(); // O(1), held in the version table
//! client.insert(1, 99).unwrap();
//! client.insert(2, 20).unwrap();
//!
//! // The pinned version is immutable under the writes above...
//! let (entries, _) = client.range(Some(pinned), .., 0).unwrap();
//! assert_eq!(entries, vec![(1, 10)]);
//! // ...and the wire diff is the change, not the map.
//! let diff = client.diff(pinned, None).unwrap();
//! assert_eq!(diff.len(), 2);
//! server.shutdown();
//! ```
//!
//! Drive it: `cargo run --release --bin loadgen -- --threads 8
//! --ops 100000` (Zipf read/write mix, throughput + latency table,
//! optional `--json` in the bench-trend schema);
//! `cargo run --release --example kv_server_demo`;
//! `cargo bench --bench server_rtt`.
//!
//! ## Replication: read scale-out from snapshot diffs
//!
//! Path copying makes the delta between two nearby versions *sublinear*
//! to compute (the pruned `diff`), which is exactly the primitive
//! log-shipping replication wants: instead of streaming full state, a
//! primary publishes a monotone **version feed** — a capped ring of
//! recent snapshots keyed by epoch, nearly free to retain because the
//! versions share all unchanged subtrees — and [`pathcopy_replica`]
//! replicas catch up by pulling `diff(applied, head)` over the wire.
//! Bootstrap (and falling too far behind the ring) goes through a
//! chunked `FullSync` that can never trip the frame cap; every diff is
//! applied to the replica's local backend as **one atomic batch**, so
//! replica readers only ever observe published versions. The replica
//! serves the same backend surface as the primary, so read traffic
//! points at replicas unchanged (`loadgen --replicas N`):
//!
//! ```
//! use path_copying::pathcopy_replica::{Replica, SyncOutcome};
//! use pathcopy_server::{backend, Client, ServerConfig};
//!
//! let primary = pathcopy_server::spawn(
//!     backend::by_name("sharded_map_8").unwrap(),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//! let mut writer = Client::connect(primary.addr()).unwrap();
//! writer.insert(1, 10).unwrap();
//!
//! // Bootstrap is a chunked full transfer...
//! let mut replica = Replica::connect(
//!     primary.addr(),
//!     backend::by_name("sharded_map_8").unwrap(),
//! )
//! .unwrap();
//! replica.sync_once().unwrap();
//! assert_eq!(replica.store().get(1), Some(10));
//!
//! // ...after which each published epoch syncs as a pruned diff:
//! // O(changes) bytes, not O(map).
//! writer.insert(2, 20).unwrap();
//! writer.publish().unwrap();
//! assert!(matches!(
//!     replica.sync_once().unwrap(),
//!     SyncOutcome::Diff { changes: 1, .. }
//! ));
//! assert_eq!(replica.store().get(2), Some(20));
//! assert_eq!(replica.stats().lag(), 0);
//! primary.shutdown();
//! ```
//!
//! (On a real map the byte asymmetry is stark — the `replica_sync`
//! bench tabulates it, and `crates/replica/tests/transfer_cost.rs`
//! asserts it on a 100k-key map.)
//!
//! Guarded mini-transactions ride the same wire: a `Batch` frame with
//! the `guarded` flag aborts **whole-batch, zero writes** when any `Cas`
//! guard fails
//! ([`Client::batch_guarded`](pathcopy_server::Client::batch_guarded),
//! [`ShardedTreapMap::transact_guarded`](prelude::ShardedTreapMap::transact_guarded)).
//!
//! See it run: `cargo run --release --example cluster_demo` (1 primary,
//! 2 replicas, concurrent writer, replica readers verifying they only
//! ever see frozen versions); `cargo bench --bench replica_sync`
//! (diff-sync vs full-sync transfer bytes as write locality varies).
//!
//! ## Durability: the epoch log
//!
//! The feed's pruned diffs are also the natural unit of *persistence*:
//! [`pathcopy_durable`] appends each published epoch to a segmented,
//! CRC-checksummed log — a full checkpoint every `checkpoint_every`
//! epochs, a small diff record otherwise, both in the wire encoding,
//! so disk and network speak the same bytes. Hook a
//! [`FeedPersister`](pathcopy_durable::FeedPersister) into the server
//! via [`ServerConfig`](pathcopy_server::ServerConfig)'s `feed_sink`
//! and every `publish` is durable before its reply; reopen the log
//! after a crash and the torn tail (if any) is truncated, the head
//! state replays, and the epoch sequence continues where it stopped:
//!
//! ```
//! use pathcopy_durable::{EpochLog, LogConfig};
//! use pathcopy_server::backend::{ServeBackend, ShardedServe};
//! use path_copying::prelude::DiffEntry;
//!
//! let dir = std::env::temp_dir().join(format!("pc-facade-log-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let (log, recovered) = EpochLog::open(&dir, LogConfig::default()).unwrap();
//! assert_eq!(recovered.head, 0);
//!
//! // Epoch 1 checkpoints the state; epoch 2 is just its diff.
//! let map = ShardedServe::with_shards(4);
//! map.insert(1, 10);
//! log.append_checkpoint(1, map.snapshot().as_ref()).unwrap();
//! log.append_diff(2, &[DiffEntry::Added(2, 20)]).unwrap();
//!
//! // Recovery: replay the head, or restore any retained epoch as it was.
//! let (state, head) = log.replay().unwrap();
//! assert_eq!((head, state.get(&2)), (2, Some(20)));
//! assert_eq!(log.restore_epoch(1).unwrap().get(&2), None);
//! # drop(log);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! Retention is checkpoint-anchored: old checkpoint+diff chains retire
//! whole once the log exceeds its byte cap, so
//! [`restore_epoch`](pathcopy_durable::EpochLog::restore_epoch) offers
//! point-in-time recovery over a bounded window. A cold replica can
//! [seed from the log](pathcopy_replica::Replica::seed_from_log) with
//! **zero** wire bytes and then converge via diffs.
//!
//! See it run: `cargo run --release --example durable_demo` (durable
//! primary, simulated crash with a torn tail, recovery, point-in-time
//! restore, log-seeded replica); `cargo bench --bench recovery`
//! (replay/restore cost vs checkpoint cadence); `loadgen --log-dir DIR`
//! for durability under load.
//!
//! ## Further reading
//!
//! Three documents cover the system prose-first (links are
//! repo-relative):
//!
//! * [`docs/ARCHITECTURE.md`](../../../docs/ARCHITECTURE.md) — crate
//!   map, the write → publish → log/replica data flow, and the
//!   snapshot/epoch lifecycle.
//! * [`docs/WIRE_PROTOCOL.md`](../../../docs/WIRE_PROTOCOL.md) — every
//!   frame and tag byte-by-byte, error frames, the guarded-batch abort
//!   contract, and the durable log's record format (cross-checked
//!   against the encoder by `crates/server/tests/doc_contract.rs`).
//! * [`docs/OPERATIONS.md`](../../../docs/OPERATIONS.md) — running a
//!   durable cluster, failure drills, what healthy counters look like,
//!   and the CI bench soft-gate.
//!
//! ## Building and testing
//!
//! The workspace is self-contained — external dependencies are vendored
//! as API-compatible shims under `shims/` (the build image has no
//! registry access), so the following work offline:
//!
//! ```text
//! cargo build --release      # whole workspace, examples and bins included
//! cargo test -q              # unit + integration + property + doc tests
//! cargo bench -- --test      # every bench once, smoke mode
//! ```

#![warn(missing_docs)]

pub use pathcopy_concurrent;
pub use pathcopy_core;
pub use pathcopy_durable;
pub use pathcopy_replica;
pub use pathcopy_server;
pub use pathcopy_sim;
pub use pathcopy_trees;
pub use pathcopy_workloads;

/// One-line import for the common API.
pub mod prelude {
    pub use pathcopy_concurrent::{
        diff_to_ops, AvlSet as ConcurrentAvlSet, BatchOp, BatchResult, EbstSnapshot,
        ExternalBstSet as ConcurrentExternalBstSet, GuardAbort, LockedMap, LockedTreapSet, Queue,
        RbSet as ConcurrentRbSet, RwLockedTreapSet, ShardedSetSnapshot, ShardedSnapshot,
        ShardedTreapMap, ShardedTreapSet, Stack, TreapMap, TreapSet, TreapSetSnapshot,
        TreapSnapshot,
    };
    pub use pathcopy_core::{
        BackoffPolicy, ConcurrentMap, ConcurrentSet, DiffEntry, MapSnapshot, MutexUc, PathCopyUc,
        RwLockUc, SeqUc, SetDiffEntry, SetSnapshot, Snapshottable, StatsSnapshot, Update,
        VersionCell,
    };
    pub use pathcopy_replica::{Replica, ReplicaStatsSnapshot, SyncOutcome};
    pub use pathcopy_trees::{
        avl::AvlMap, avl::AvlSet, list::PStack, pvec::PVec, queue::PQueue, rbtree::RbMap,
        rbtree::RbSet, ExternalBstSet, TreapMap as PersistentTreapMap,
        TreapSet as PersistentTreapSet,
    };
}
