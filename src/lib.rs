//! # path-copying
//!
//! Reproduction of *Unexpected Scaling in Path Copying Trees* (Kokorin,
//! Fedorov, Brown, Aksenov — PPoPP 2023, arXiv:2212.00521): a lock-free
//! universal construction over persistent path-copying data structures,
//! the persistent structures themselves, the paper's private-cache
//! analytical model as an executable simulator, and a benchmark harness
//! regenerating every table and figure.
//!
//! This crate re-exports the workspace's public API; see the member
//! crates for details:
//!
//! * [`pathcopy_core`] — `VersionCell` (the `Root_Ptr` register),
//!   `PathCopyUc` (the retrying load/copy/CAS loop), lock baselines.
//! * [`pathcopy_trees`] — persistent treap, AVL, red–black tree,
//!   external BST, list, queue, vector; sharing measurements.
//! * [`pathcopy_concurrent`] — ready-made lock-free sets/maps/sequences.
//! * [`pathcopy_sim`] — the Appendix-A model: private LRU caches,
//!   synchronous processes, closed-form speedup.
//! * [`pathcopy_workloads`] — the §4 Batch/Random workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use path_copying::prelude::*;
//!
//! let set = TreapSet::new();
//! std::thread::scope(|s| {
//!     for t in 0..4i64 {
//!         let set = &set;
//!         s.spawn(move || {
//!             for i in 0..1000 {
//!                 set.insert(t * 1000 + i); // lock-free, linearizable
//!             }
//!         });
//!     }
//! });
//! assert_eq!(set.len(), 4000);
//!
//! // O(1) immutable snapshot: reads never block writers.
//! let snap = set.snapshot();
//! set.remove(&0);
//! assert!(snap.contains(&0));
//! ```

#![warn(missing_docs)]

pub use pathcopy_concurrent;
pub use pathcopy_core;
pub use pathcopy_sim;
pub use pathcopy_trees;
pub use pathcopy_workloads;

/// One-line import for the common API.
pub mod prelude {
    pub use pathcopy_concurrent::{
        AvlSet as ConcurrentAvlSet, ExternalBstSet as ConcurrentExternalBstSet, LockedTreapSet,
        Queue, RbSet as ConcurrentRbSet, RwLockedTreapSet, Stack, TreapMap, TreapSet,
    };
    pub use pathcopy_core::{
        BackoffPolicy, MutexUc, PathCopyUc, RwLockUc, SeqUc, Update, VersionCell,
    };
    pub use pathcopy_trees::{
        avl::AvlMap, avl::AvlSet, list::PStack, pvec::PVec, queue::PQueue, rbtree::RbMap,
        rbtree::RbSet, ExternalBstSet, TreapMap as PersistentTreapMap,
        TreapSet as PersistentTreapSet,
    };
}
