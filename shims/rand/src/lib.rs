//! In-tree shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build image has no network access to a crates.io mirror, so the
//! workspace vendors what it needs: [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through splitmix64 — not the real `StdRng`'s
//! ChaCha12, but every use in this workspace is a seeded simulation or
//! workload generator where only determinism and uniformity matter, not
//! cryptographic strength.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the full value range
/// (the shim's analogue of sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly random value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges a uniform integer can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// A source of randomness: the shim folds rand's `RngCore` into `Rng`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators; the shim only needs the `u64` convenience seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64 — used to expand seeds into full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    /// Alias: the shim's small generator is the same xoshiro256++.
    pub type SmallRng = StdRng;
}

/// A non-cryptographic OS-independent "thread rng": deterministic per call
/// site is unacceptable, so it folds in a monotone counter and the thread id.
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x243f_6a88_85a3_08d3);
    let n = COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    let tid = std::thread::current().id();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::hash::Hash::hash(&tid, &mut h);
    rngs::StdRng::seed_from_u64(n ^ std::hash::Hasher::finish(&h))
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform draw from `[0, bound)` by widening multiply (Lemire's method
/// without the rejection step; the bias is < 2^-64 per draw, irrelevant
/// for simulation workloads).
fn bounded(rng: &mut (impl Rng + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-50i64..=50);
            assert!((-50..=50).contains(&x));
            let y = rng.gen_range(0usize..17);
            assert!(y < 17);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
