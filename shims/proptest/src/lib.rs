//! In-tree shim for the subset of the `proptest` API this workspace's
//! property tests use: the [`proptest!`] macro, [`strategy::Strategy`]
//! with `prop_map`, [`prop_oneof!`], `any::<T>()`, integer-range
//! strategies, `prop::collection::{vec, btree_set}`, and the
//! `prop_assert*` macros.
//!
//! The build image has no network access to a crates.io mirror, so the
//! workspace vendors a small random-generation harness with the same
//! calling convention. Differences from the real crate: cases are drawn
//! from a deterministic per-test RNG (seeded from the test name, so runs
//! are reproducible), there is **no shrinking** — a failing case prints
//! its generated inputs instead — and `prop_assert*` panic immediately.

use std::marker::PhantomData;

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    use rand::Rng as _;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<V> {
        inner: Box<dyn Strategy<Value = V>>,
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice among several strategies; built by [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Chooses uniformly among `options` on each draw.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let ix = rng.rng.gen_range(0..self.options.len());
            self.options[ix].generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Debug + Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for full-range generation.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::PhantomData;
    use std::fmt::Debug;

    use rand::Rng as _;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + Debug {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical full-range strategy of `T`; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Returns the canonical strategy generating arbitrary values of `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen()
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any(PhantomData)
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($t:ident),+)),+) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                type Strategy = ($($t::Strategy,)+);
                fn arbitrary() -> Self::Strategy {
                    ($($t::arbitrary(),)+)
                }
            }
        )+};
    }

    impl_arbitrary_tuple!((A, B), (A, B, C));
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::Range;

    use rand::Rng as _;

    /// Generates `Vec`s with a length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s with a target size drawn from `size` and
    /// elements from `element`. If the element domain is too small to
    /// reach the target size, the set may come out smaller (matching the
    /// real crate's duplicate-collapsing behaviour).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.rng.gen_range(self.size.clone());
            let mut out = BTreeSet::new();
            // Bounded attempts: duplicates collapse, so small domains
            // cannot loop forever.
            for _ in 0..target.saturating_mul(16).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod test_runner {
    //! Test configuration and the per-test RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The RNG handed to strategies; deterministic per test name.
    pub struct TestRng {
        pub(crate) rng: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeds from a stable hash of `name`, so each test is
        /// reproducible across runs but distinct from its neighbours.
        pub fn deterministic(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed),
            }
        }
    }
}

pub mod prelude {
    //! One-line import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each case draws its arguments from the given
/// strategies and runs the body; a failure reports the generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = ($strat).generate(&mut rng);)+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body)
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs: {}",
                            stringify!($name),
                            described
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion (panics on failure; the shim has no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (0usize..7).generate(&mut rng);
            assert!(v < 7);
            let w = (-5i16..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn collections_honor_size_and_dedup() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic("collections");
        for _ in 0..100 {
            let v = prop::collection::vec(any::<u8>(), 3..9).generate(&mut rng);
            assert!((3..9).contains(&v.len()));
            let s = prop::collection::btree_set(any::<i16>(), 16..64).generate(&mut rng);
            assert!(s.len() < 64);
            assert!(s.len() >= 16, "i16 domain easily fills 16 slots");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_and_runs(x in 0u32..100, pair in (any::<bool>(), 1i64..=9)) {
            prop_assert!(x < 100);
            let (_b, n) = pair;
            prop_assert!((1..=9).contains(&n));
        }

        #[test]
        fn oneof_and_map_compose(v in prop::collection::vec(prop_oneof![
            (0i32..10).prop_map(|n| n * 2),
            (0i32..10).prop_map(|n| n * 2 + 1),
        ], 0..20)) {
            prop_assert!(v.iter().all(|&n| (0..20).contains(&n)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        for _ in 0..100 {
            assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
        }
    }
}
