//! In-tree shim for the subset of `parking_lot` this workspace uses.
//!
//! The build image has no network access to a crates.io mirror, so the
//! workspace vendors the API it needs: `Mutex` and `RwLock` with
//! parking_lot's non-poisoning guard-returning signatures, backed by the
//! std primitives. Behaviour (blocking, exclusivity) is identical; only
//! the micro-optimized parking/word-lock internals are absent, which the
//! lock-based UC *baselines* do not depend on for correctness.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock`, never fails: a poisoned lock is re-entered
    /// (parking_lot has no poisoning at all).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning readers-writer lock (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
