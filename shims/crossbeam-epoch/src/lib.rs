//! In-tree shim for the subset of `crossbeam-epoch` this workspace uses:
//! [`pin`], [`Guard::defer_unchecked`] and [`Guard::flush`].
//!
//! This is a real epoch-based-reclamation implementation, not a stub —
//! `pathcopy_core::VersionCell` relies on it for memory safety:
//!
//! * Every thread registers a *participant* record on first pin. While a
//!   thread is pinned, the record publishes which global epoch it pinned
//!   in; unpinned threads publish "not pinned".
//! * Deferred functions accumulate in a thread-local bag. Bags are sealed
//!   into a global garbage list stamped with the epoch at seal time
//!   (automatically once a bag grows, or eagerly on [`Guard::flush`]).
//! * The global epoch may advance from `E` to `E + 1` only when every
//!   currently-pinned participant pinned in `E`. Hence active pins always
//!   span at most `{E - 1, E}`, and garbage stamped `E` is executed only
//!   once the global epoch reaches `E + 2` — at which point every pin
//!   that could have observed the retired pointer has been released.
//!
//! Differences from the real crate: bags migrate through two `Mutex`es
//! (registration and the garbage list) instead of lock-free lists, so
//! *reclamation* is blocking. Pinning itself — the per-`load` hot path —
//! stays a handful of atomics on the participant record, and retired
//! memory is never touched before it is provably unreachable.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Seal a thread-local bag into the global garbage list once it holds
/// this many deferred functions.
const BAG_SEAL_THRESHOLD: usize = 64;

type Deferred = Box<dyn FnOnce() + Send>;

/// Per-thread published state: 0 = not pinned, otherwise `epoch + 1`.
struct Participant {
    pinned: AtomicU64,
}

struct Global {
    epoch: AtomicU64,
    participants: Mutex<Vec<Arc<Participant>>>,
    /// Sealed bags: `(seal_epoch, deferred functions)`.
    garbage: Mutex<Vec<(u64, Vec<Deferred>)>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicU64::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

impl Global {
    /// Advances the epoch if every pinned participant pinned in the
    /// current one. Returns `true` if the epoch moved.
    fn try_advance(&self) -> bool {
        let participants = self
            .participants
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let epoch = self.epoch.load(Ordering::SeqCst);
        for p in participants.iter() {
            let pinned = p.pinned.load(Ordering::SeqCst);
            if pinned != 0 && pinned - 1 != epoch {
                return false;
            }
        }
        self.epoch
            .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Executes every sealed bag that is at least two epochs old. The
    /// deferred functions run *outside* the garbage lock so that a drop
    /// which itself defers cannot deadlock.
    fn collect(&self) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let ready: Vec<(u64, Vec<Deferred>)> = {
            let mut garbage = self.garbage.lock().unwrap_or_else(PoisonError::into_inner);
            let (ready, keep) = std::mem::take(&mut *garbage)
                .into_iter()
                .partition(|(sealed, _)| sealed + 2 <= epoch);
            *garbage = keep;
            ready
        };
        for (_, bag) in ready {
            for f in bag {
                f();
            }
        }
    }

    fn seal(&self, sealed_at: u64, bag: Vec<Deferred>) {
        if bag.is_empty() {
            return;
        }
        self.garbage
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((sealed_at, bag));
    }
}

/// Thread-local handle: the participant record plus the open bag.
struct Local {
    participant: Arc<Participant>,
    pin_count: Cell<u32>,
    bag: RefCell<Vec<Deferred>>,
}

impl Local {
    fn register() -> Local {
        let participant = Arc::new(Participant {
            pinned: AtomicU64::new(0),
        });
        global()
            .participants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&participant));
        Local {
            participant,
            pin_count: Cell::new(0),
            bag: RefCell::new(Vec::new()),
        }
    }

    /// Moves the open bag into the global garbage list.
    fn seal_bag(&self) {
        let bag = std::mem::take(&mut *self.bag.borrow_mut());
        let epoch = global().epoch.load(Ordering::SeqCst);
        global().seal(epoch, bag);
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Thread exit: hand any pending garbage to the global list and
        // deregister, so a parked thread cannot block the epoch forever.
        self.seal_bag();
        let mut participants = global()
            .participants
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        participants.retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static LOCAL: Local = Local::register();
}

/// An RAII guard keeping the current thread pinned; see [`pin`].
pub struct Guard {
    /// `Guard` is `!Send`/`!Sync`: unpinning must happen on the pinning
    /// thread, as with the real crate.
    _not_send: PhantomData<*mut ()>,
}

/// Pins the current thread, preventing any memory retired from this point
/// on from being reclaimed until the returned [`Guard`] is dropped.
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        let count = local.pin_count.get();
        local.pin_count.set(count + 1);
        if count == 0 {
            let g = global();
            // Publish the epoch we pin in; the fence orders the publish
            // before the re-read, so a concurrent `try_advance` either
            // sees our pin or we see its new epoch and re-publish.
            loop {
                let epoch = g.epoch.load(Ordering::SeqCst);
                local.participant.pinned.store(epoch + 1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if g.epoch.load(Ordering::SeqCst) == epoch {
                    break;
                }
            }
        }
    });
    Guard {
        _not_send: PhantomData,
    }
}

impl Guard {
    /// Defers `f` until no thread pinned at (or before) the current epoch
    /// remains pinned.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `f` (and everything it captures) remains
    /// valid until the deferral runs, and is safe to run on another
    /// thread — the same contract as `crossbeam_epoch`'s
    /// `Guard::defer_unchecked`, which this shim mirrors (including
    /// erasing `Send`/lifetime bounds on `f`).
    pub unsafe fn defer_unchecked<F: FnOnce()>(&self, f: F) {
        // SAFETY: per the function contract the caller vouches for
        // lifetime and cross-thread validity, so extending to a
        // `'static + Send` boxed closure is sound.
        let deferred: Deferred = unsafe {
            std::mem::transmute::<Box<dyn FnOnce()>, Box<dyn FnOnce() + Send>>(Box::new(f))
        };
        LOCAL.with(|local| {
            local.bag.borrow_mut().push(deferred);
            if local.bag.borrow().len() >= BAG_SEAL_THRESHOLD {
                local.seal_bag();
                let g = global();
                g.try_advance();
                g.collect();
            }
        });
    }

    /// Seals this thread's pending deferrals into the global garbage list
    /// and attempts to advance the epoch and reclaim.
    pub fn flush(&self) {
        LOCAL.with(|local| local.seal_bag());
        let g = global();
        g.try_advance();
        g.collect();
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // `try_with`: the guard may drop during thread-local teardown,
        // after `LOCAL` itself was destroyed (and deregistered us).
        let _ = LOCAL.try_with(|local| {
            let count = local.pin_count.get();
            debug_assert!(count > 0, "unpinning a thread that is not pinned");
            local.pin_count.set(count - 1);
            if count == 1 {
                local.participant.pinned.store(0, Ordering::SeqCst);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::atomic::Ordering::Relaxed;

    fn drain(live: &'static AtomicUsize, expect: usize) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while live.load(Relaxed) != expect {
            pin().flush();
            assert!(
                std::time::Instant::now() < deadline,
                "not drained: {} != {expect}",
                live.load(Relaxed)
            );
        }
    }

    #[test]
    fn deferred_functions_eventually_run_exactly_once() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        const N: usize = 1000;
        for _ in 0..N {
            let guard = pin();
            // SAFETY: the closure captures nothing with a lifetime.
            unsafe {
                guard.defer_unchecked(|| {
                    RAN.fetch_add(1, Relaxed);
                })
            };
        }
        drain(&RAN, N);
        // Nothing runs twice: the count stays exactly N.
        for _ in 0..10 {
            pin().flush();
        }
        assert_eq!(RAN.load(Relaxed), N);
    }

    #[test]
    fn reclamation_waits_for_concurrent_pins() {
        static FREED: AtomicUsize = AtomicUsize::new(0);
        let blocker = pin();
        {
            let guard = pin();
            // SAFETY: 'static capture only.
            unsafe {
                guard.defer_unchecked(|| {
                    FREED.fetch_add(1, Relaxed);
                })
            };
            guard.flush();
        }
        // We are still pinned (from `blocker`'s epoch): the deferral can
        // run at the earliest two epochs later, and the epoch cannot
        // advance twice past a live pin.
        for _ in 0..50 {
            global().try_advance();
            global().collect();
        }
        assert_eq!(FREED.load(Relaxed), 0, "freed under an active pin");
        drop(blocker);
        drain(&FREED, 1);
    }

    #[test]
    fn concurrent_churn_reclaims_everything() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Tracked {
            fn new() -> Tracked {
                LIVE.fetch_add(1, Relaxed);
                Tracked
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Relaxed);
            }
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..5_000u32 {
                        let guard = pin();
                        let item = Tracked::new();
                        // SAFETY: `item` is moved into the closure and
                        // owns no borrowed data.
                        unsafe { guard.defer_unchecked(move || drop(item)) };
                        if i % 256 == 0 {
                            guard.flush();
                        }
                    }
                });
            }
        });
        drain(&LIVE, 0);
    }
}
