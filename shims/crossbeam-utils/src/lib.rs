//! In-tree shim for the subset of `crossbeam-utils` this workspace uses:
//! [`CachePadded`]. The build image has no registry access, so the
//! workspace vendors the one type it needs.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) a cache-line boundary so that
/// adjacent values never share a line — the same contract as
/// `crossbeam_utils::CachePadded`. 128 bytes covers the common cases:
/// x86_64 adjacent-line prefetching and aarch64's 128-byte lines.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_is_aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(std::mem::align_of_val(&p), 128);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
