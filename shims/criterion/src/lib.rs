//! In-tree shim for the subset of the Criterion.rs API this workspace's
//! benches use: groups, `bench_function`, `iter`/`iter_custom`,
//! `BenchmarkId`, `Throughput`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build image has no network access to a crates.io mirror, so the
//! workspace vendors a small harness with the same calling convention.
//! It measures wall-clock mean/min/max over the configured sample count
//! and prints one line per benchmark; it does not keep baselines, plot,
//! or bootstrap confidence intervals.
//!
//! CLI compatibility with `cargo bench` and the real Criterion:
//!
//! * `--test` runs every benchmark once with a single iteration (used by
//!   CI smoke jobs and `cargo bench -- --test`);
//! * a positional argument filters benchmarks by substring;
//! * `--bench` (passed by cargo itself) and the common Criterion flags
//!   that make no sense here (`--save-baseline`, `--baseline`,
//!   `--noplot`, …) are accepted and ignored.
//!
//! # Machine-readable results
//!
//! When the `BENCH_JSON` environment variable names a file, every
//! executed benchmark appends one JSON line to it:
//!
//! ```text
//! {"id":"group/name/param","median_ns":123.4,"samples":10,"mode":"bench"}
//! ```
//!
//! In `--test` mode the single smoke iteration is timed and recorded
//! with `"mode":"test"` — noisy as an absolute number, but stable
//! enough for CI to archive as a per-commit perf-trajectory artifact
//! (see the bench-smoke job's `BENCH_ci.json`).
//!
//! Benches can also record **gauges** — point-in-time measured
//! quantities that are not the timing of a closure (a replication lag,
//! a byte counter) — with [`Criterion::report_gauge`]:
//!
//! ```text
//! {"id":"fanout/replica_lag","median_ns":812345.0,"samples":1,"mode":"gauge","unit":"ns"}
//! ```
//!
//! Gauge lines reuse the `median_ns` key for the value so the CI trend
//! aggregation treats them like any other series; `unit` names what the
//! number actually is.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point state for a bench binary; created by [`criterion_main!`].
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    ran: usize,
}

/// Per-group measurement settings.
#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Builds the harness from `std::env::args`, accepting the subset of
    /// Criterion flags described in the crate docs.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--noplot" | "--quiet" | "--verbose" | "--exact" | "--quick" => {}
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" | "--profile-time" => {
                    // Flag takes a value we do not use.
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                other => c.filter = Some(other.to_string()),
            }
        }
        c
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_string(), Settings::default(), f);
        self
    }

    /// Opens a benchmark group with its own measurement settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }

    /// Records a point-in-time gauge under the benchmark namespace:
    /// one `BENCH_JSON` line with `"mode":"gauge"` and the given
    /// `unit`, plus a human-readable stdout line. Honors the CLI
    /// filter like a benchmark does. Use it for measured quantities
    /// that are not closure timings — e.g. how far a replica's applied
    /// epoch trails the primary after a fixed push workload.
    pub fn report_gauge(&mut self, id: &str, value: f64, unit: &str) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                append_json_line(path.as_ref(), id, value, 1, "gauge", Some(unit));
            }
        }
        println!("{id:<50} gauge: {value:.1} {unit}");
        self
    }

    /// Prints the closing line; called by [`criterion_main!`].
    pub fn final_summary(&mut self) {
        if self.test_mode {
            println!(
                "criterion-shim: {} benchmark(s) executed in test mode",
                self.ran
            );
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, settings: Settings, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            let wall = Instant::now();
            f(&mut b);
            let wall = wall.elapsed();
            // Prefer the time the closure measured (per-iteration); fall
            // back to wall clock for closures that never call `iter`.
            let ns = if b.elapsed > Duration::ZERO {
                b.elapsed.as_nanos() as f64
            } else {
                wall.as_nanos() as f64
            };
            emit_json(&id, ns, 1, "test");
            println!("Testing {id}: ok");
            self.ran += 1;
            return;
        }

        // Calibrate: grow the iteration count until one sample is long
        // enough that `sample_size` samples fill the measurement time.
        // Bounded by *wall clock*, not only by the reported duration:
        // `iter_custom` closures may report normalized (e.g. per-op)
        // times far below the real time they take, and doubling until the
        // reported time fills the window would then run for hours.
        let per_sample = settings.measurement_time / settings.sample_size as u32;
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            let wall = Instant::now();
            f(&mut b);
            let wall = wall.elapsed();
            if b.elapsed >= per_sample / 2 || wall * 2 >= per_sample || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        // Warm-up.
        let warm_deadline = Instant::now() + settings.warm_up_time;
        while Instant::now() < warm_deadline {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }

        // Measure.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
        for _ in 0..settings.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let median = {
            let n = samples_ns.len();
            if n % 2 == 1 {
                samples_ns[n / 2]
            } else {
                (samples_ns[n / 2 - 1] + samples_ns[n / 2]) / 2.0
            }
        };
        emit_json(&id, median, samples_ns.len(), "bench");
        let (lo, hi) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);
        let mut line = String::new();
        let _ = write!(
            line,
            "{id:<50} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(mean),
            fmt_ns(hi)
        );
        println!("{line}");
        self.ran += 1;
    }
}

/// Appends one JSON line per executed benchmark to the `BENCH_JSON`
/// file, if set. Failures to write are reported but never fail a bench
/// run.
fn emit_json(id: &str, median_ns: f64, samples: usize, mode: &str) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    append_json_line(path.as_ref(), id, median_ns, samples, mode, None);
}

/// The `BENCH_JSON` line writer, separated from the env lookup so it is
/// directly testable (mutating the process environment from tests races
/// with concurrently running benchmarks reading it). Gauge lines carry
/// an extra `unit` field; timing lines omit it.
fn append_json_line(
    path: &std::path::Path,
    id: &str,
    median_ns: f64,
    samples: usize,
    mode: &str,
    unit: Option<&str>,
) {
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let unit_field = match unit {
        Some(u) => format!(",\"unit\":\"{u}\""),
        None => String::new(),
    };
    let line = format!(
        "{{\"id\":\"{escaped}\",\"median_ns\":{median_ns:.1},\"samples\":{samples},\"mode\":\"{mode}\"{unit_field}}}"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = written {
        eprintln!(
            "criterion-shim: cannot append to BENCH_JSON={}: {e}",
            path.display()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Declares the throughput of each iteration (accepted; the shim
    /// reports time per iteration only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        let settings = self.settings;
        self.criterion.run_one(id, settings, f);
        self
    }

    /// Closes the group (no-op; for API compatibility).
    pub fn finish(&mut self) {}
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the measured time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// A benchmark id with a parameter, `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Conversion into a benchmark id string (either a `&str` or a
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Iteration throughput declaration (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_all_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 37,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 37);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("uc", 4).into_benchmark_id(), "uc/4");
        assert_eq!(BenchmarkId::from_parameter(8).into_benchmark_id(), "8");
    }

    #[test]
    fn test_mode_runs_each_function_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
            ran: 0,
        };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("one", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn bench_json_lines_append_and_escape() {
        // Exercises the writer directly: setting BENCH_JSON in the
        // process environment would race with other tests' benchmarks
        // reading it through emit_json.
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_bench_json_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        append_json_line(&path, "json/a", 12.34, 1, "test", None);
        append_json_line(
            &path,
            "needs \"escaping\" \\ here",
            1_000_000.0,
            10,
            "bench",
            None,
        );
        append_json_line(&path, "fanout/replica_lag", 42.0, 1, "gauge", Some("ns"));

        let contents = std::fs::read_to_string(&path).expect("BENCH_JSON file written");
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 3, "one JSON line per benchmark: {contents}");
        assert_eq!(
            lines[0],
            "{\"id\":\"json/a\",\"median_ns\":12.3,\"samples\":1,\"mode\":\"test\"}"
        );
        assert_eq!(
            lines[1],
            "{\"id\":\"needs \\\"escaping\\\" \\\\ here\",\"median_ns\":1000000.0,\
             \"samples\":10,\"mode\":\"bench\"}"
        );
        assert_eq!(
            lines[2],
            "{\"id\":\"fanout/replica_lag\",\"median_ns\":42.0,\"samples\":1,\
             \"mode\":\"gauge\",\"unit\":\"ns\"}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_gauge_honors_the_filter() {
        let mut c = Criterion {
            filter: Some("fanout".into()),
            test_mode: true,
            ran: 0,
        };
        // Neither call may touch BENCH_JSON here (unset in tests); the
        // filtered id must not even print. This is a smoke check that
        // the call compiles and filters — the line format is covered by
        // `bench_json_lines_append_and_escape`.
        c.report_gauge("other/lag", 1.0, "ns");
        c.report_gauge("fanout/replica_lag", 2.0, "ns");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match".into()),
            test_mode: true,
            ran: 0,
        };
        let mut calls = 0;
        c.bench_function("no", |b| b.iter(|| calls += 1));
        c.bench_function("does_match", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
        assert_eq!(c.ran, 1);
    }
}
